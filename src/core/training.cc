#include "core/training.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "core/npe_common.h"
#include "core/pipeline.h"
#include "core/sched/scheduler.h"
#include "hw/devices.h"
#include "hw/power.h"
#include "models/throughput.h"
#include "obs/monitor.h"
#include "sim/barrier.h"
#include "sim/channel.h"
#include "sim/simulator.h"
#include "sim/wait_group.h"

namespace ndp::core {

// Coroutines below borrow run-scope state by reference: every Task is
// spawned on the Simulator owned by the enclosing entry point (or the
// multi-job Cluster), and s.run() drains the event queue (joining all
// of them) before any referent goes out of scope, so the references
// cannot dangle.
// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)

namespace {

/** Everything the coroutines share for one FT-DMP dataflow. Devices
 *  and fabric nodes are borrowed from FtDmpPorts; the per-run feature
 *  spools and gates are owned here. */
struct FtDmpEnv
{
    FtDmpEnv(sim::Simulator &s, const FtDmpPorts &ports, int n_run)
        : sim(s), fabric(*ports.fabric), storeNodes(ports.storeNodes),
          tunerNode(ports.tunerNode), tunerGpu(*ports.tunerGpu),
          faults(ports.faults), sched(ports.sched), jobId(ports.jobId)
    {
        // The Tuner spools arriving features to its local NVMe before
        // each training run (§5.2), so the feature path exerts no
        // back-pressure on the stores: effectively unbounded buffers.
        constexpr size_t spool = static_cast<size_t>(1) << 40;
        for (int r = 0; r < n_run; ++r) {
            runFeatures.push_back(
                std::make_unique<sim::Channel<int>>(s, spool));
            tunerDone.push_back(std::make_unique<sim::WaitGroup>(s));
            tunerDone.back()->add(1);
        }
    }

    sim::Simulator &sim;
    net::NetFabric &fabric;
    /** Job-local store order; storeNodes[k] is stores[k]'s node. */
    std::vector<net::NodeId> storeNodes;
    net::NodeId tunerNode = net::kNoNode;
    hw::GpuExec &tunerGpu;
    std::vector<std::unique_ptr<sim::Channel<int>>> runFeatures;
    std::vector<std::unique_ptr<sim::WaitGroup>> tunerDone;

    /** Non-null only when a non-empty FaultPlan armed the run. */
    sim::FaultInjector *faults = nullptr;
    /** Multi-job hooks (null/-1 single-tenant: zero-cost rule). */
    sched::Scheduler *sched = nullptr;
    int jobId = -1;

    StageMetrics stages;
    double syncTraffic = 0.0;
    double feEndTime = 0.0;

    /** @name Trace plumbing (null tracer = no-ops everywhere)
     * @{ */
    obs::Tracer *trace = nullptr;
    /** Per-store tracks for the bespoke "+FC" coroutine (the NPE
     *  pipelines intern their own). */
    std::vector<int> trkStoreDisk, trkStoreGpu, trkStoreSync;
    int trkTunerGpu = 0;
    int trkFault = 0;
    /** @} */

    void
    setupTrace(obs::Tracer *t, const std::string &scope,
               const std::vector<int> &fleet_idx, int plus_fc_stores,
               bool has_tuner)
    {
        trace = t;
        if (!t)
            return;
        for (int i = 0; i < plus_fc_stores; ++i) {
            std::string node = obs::scopedNode(
                scope,
                "store" +
                    std::to_string(fleet_idx[static_cast<size_t>(i)]));
            trkStoreDisk.push_back(t->track(node, "disk"));
            trkStoreGpu.push_back(t->track(node, "gpu"));
            trkStoreSync.push_back(t->track(node, "sync"));
        }
        if (has_tuner)
            trkTunerGpu =
                t->track(obs::scopedNode(scope, "tuner"), "gpu");
        if (faults)
            trkFault =
                t->track(obs::scopedNode(scope, "tuner"), "faults");
    }
};

/**
 * Naive-NDP store ("+FC"): the whole model, classifier included, runs
 * on the store; every iteration pays a weight synchronization over the
 * shared network (§4.1). This is not an NPE dataflow — it is the
 * anti-pattern FT-DMP replaces — so it stays a bespoke coroutine
 * rather than a Pipeline configuration. @p lidx is the job-local store
 * index (shard shares, node/track arrays); @p fidx the fleet index
 * (fault RNG streams). Single-tenant runs pass lidx == fidx.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents
 * live in the dataflow's scope, which joins this task via s.run()
 * before they die)
 */
sim::Task
storeLocalTrainProc(FtDmpEnv &env, StoreStations &st,
                    const ExperimentConfig &cfg, const TrainOptions &opt,
                    int lidx, int fidx, sim::Barrier &sync_barrier,
                    sim::WaitGroup &stores_wg)
{
    const models::ModelSpec &m = *cfg.model;
    // Naive NDP predates the NPE: binaries are stored uncompressed.
    double read_bytes = m.inputMB() * 1e6;
    // Epoch 1 extracts and caches features (the weight-freeze forward
    // is identical to inference, §2.1); later epochs retrain the
    // classifier from the cache. Every iteration pays the all-reduce
    // of the trainable weights across stores — the cost FT-DMP exists
    // to eliminate — and the all-reduce is a fleet-wide barrier: the
    // fastest store waits for the slowest.
    double speed = opt.speedOf(lidx);
    double fe_per_image =
        models::feSecondsPerImage(*cfg.storeSpec.gpu, m,
                                  m.classifierStart(), opt.feBatch) /
        speed;
    // Data parallelism keeps the *global* batch fixed, so each store
    // iterates (and synchronizes) more often as stores are added —
    // the linear scaling §4.1 observes.
    int store_batch =
        std::max(1, opt.trainBatch / std::max(1, cfg.nStores));
    double head_per_image =
        models::tunerEpochSecondsPerImage(*cfg.storeSpec.gpu, m,
                                          store_batch) /
        speed;
    double sync_bytes_per_iter =
        2.0 * m.trainableParamsM() * 1e6 * 4.0;

    for (int r = 0; r < opt.nRun; ++r) {
        uint64_t share = runShare(cfg.nImages, opt.nRun, cfg.nStores, r,
                                  lidx);
        // Store 0 always holds the largest share; every store runs
        // the same number of all-reduce rounds so the barrier closes.
        uint64_t max_share =
            runShare(cfg.nImages, opt.nRun, cfg.nStores, r, 0);
        uint64_t iters_per_epoch =
            (max_share + static_cast<uint64_t>(store_batch) - 1) /
            static_cast<uint64_t>(store_batch);
        for (int epoch = 0; epoch < opt.tunerEpochs; ++epoch) {
            uint64_t left = share;
            for (uint64_t it = 0; it < iters_per_epoch; ++it) {
                if (env.faults) {
                    if (double d = env.faults->stallDelay(
                            fidx, env.sim.now());
                        d > 0.0) {
                        env.faults->report().degradedS += d;
                        {
                            obs::SpanGuard sg(
                                env.trace, env.sim,
                                env.trace ? env.trkStoreDisk
                                                [static_cast<size_t>(
                                                    lidx)]
                                          : 0,
                                obs::Cat::Stall, "stall");
                            co_await env.sim.delay(d);
                        }
                    }
                    if (env.faults->crashed(fidx, env.sim.now())) {
                        // The synchronized fleet cannot re-assign a
                        // shard (every store trains the full model):
                        // the dead store's unextracted images are
                        // simply lost, and it must leave the barrier
                        // or the surviving all-reduces hang — exactly
                        // the fragility FT-DMP's no-sync design
                        // removes (§4.1).
                        uint64_t lost = epoch == 0 ? left : 0;
                        for (int rr = r + 1; rr < opt.nRun; ++rr)
                            lost += runShare(cfg.nImages, opt.nRun,
                                             cfg.nStores, rr, lidx);
                        env.faults->noteUnrecovered(
                            sim::FaultClass::StoreCrash, lost);
                        if (env.trace)
                            env.trace->instant(
                                env.trkFault, obs::Cat::Fault,
                                "crash", env.sim.now(),
                                {{"store",
                                  static_cast<double>(fidx)},
                                 {"lost",
                                  static_cast<double>(lost)}});
                        sync_barrier.leave();
                        env.feEndTime =
                            std::max(env.feEndTime, env.sim.now());
                        stores_wg.done();
                        co_return;
                    }
                }
                int n = static_cast<int>(std::min<uint64_t>(
                    static_cast<uint64_t>(store_batch), left));
                left -= static_cast<uint64_t>(n);

                const size_t sidx = static_cast<size_t>(lidx);
                if (n > 0 && epoch == 0) {
                    double read_t =
                        st.disk.readServiceTime(read_bytes * n);
                    {
                        obs::SpanGuard sg(
                            env.trace, env.sim,
                            env.trace ? env.trkStoreDisk[sidx] : 0,
                            obs::Cat::Disk, "read",
                            {{"n", static_cast<double>(n)}});
                        co_await st.disk.read(read_bytes * n);
                    }
                    env.stages.readS += read_t;

                    {
                        obs::SpanGuard sg(
                            env.trace, env.sim,
                            env.trace ? env.trkStoreGpu[sidx] : 0,
                            obs::Cat::Gpu, "fe",
                            {{"n", static_cast<double>(n)}});
                        co_await st.gpu.compute(fe_per_image * n);
                    }
                    env.stages.computeS += fe_per_image * n;
                }
                if (n > 0) {
                    obs::SpanGuard sg(
                        env.trace, env.sim,
                        env.trace ? env.trkStoreGpu[sidx] : 0,
                        obs::Cat::Gpu, "train",
                        {{"n", static_cast<double>(n)}});
                    co_await st.gpu.compute(head_per_image * n);
                    env.stages.computeS += head_per_image * n;
                }

                env.stages.syncS += env.fabric.serviceTime(
                    env.storeNodes[sidx],
                    env.tunerNode, sync_bytes_per_iter);
                {
                    obs::SpanGuard sg(
                        env.trace, env.sim,
                        env.trace ? env.trkStoreSync[sidx] : 0,
                        obs::Cat::Sync, "all-reduce",
                        {{"bytes", sync_bytes_per_iter}});
                    co_await env.fabric.transfer(
                        env.storeNodes[sidx],
                        env.tunerNode, sync_bytes_per_iter,
                        net::FlowClass::Sync);
                    env.syncTraffic += sync_bytes_per_iter;
                    co_await sync_barrier.arrive();
                }
            }
        }
        env.feEndTime = std::max(env.feEndTime, env.sim.now());
    }
    stores_wg.done();
}

/** Tuner: ingest features per run, then train the classifier. The
 * Tuner GPU is the device every fine-tuning job shares, so its
 * compute is yielded and charged to the job's scheduler account.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents
 * live in the dataflow's scope, which joins this task via s.run()
 * before they die) */
sim::Task
tunerProc(FtDmpEnv &env, const ExperimentConfig &cfg,
          const TrainOptions &opt, size_t cut)
{
    const models::ModelSpec &m = *cfg.model;
    double ingest_per_image = models::tunerIngestSecondsPerImage(
        *cfg.tunerSpec.gpu, m, cut, opt.feBatch);
    double epoch_per_image = models::tunerEpochSecondsPerImage(
        *cfg.tunerSpec.gpu, m, opt.trainBatch);

    for (int r = 0; r < opt.nRun; ++r) {
        uint64_t run_imgs = evenShare(cfg.nImages, opt.nRun, r);
        uint64_t seen = 0;
        while (seen < run_imgs) {
            auto n = co_await env.runFeatures[r]->get();
            if (!n) {
                // Channel closed with a shortfall: every store sink
                // has exited and re-dispatch is exhausted, so the
                // missing features are typed losses. Train on what
                // arrived rather than hanging.
                break;
            }
            seen += static_cast<uint64_t>(*n);
            if (ingest_per_image > 0.0) {
                if (env.sched)
                    co_await env.sched->yield(env.jobId);
                obs::SpanGuard sg(env.trace, env.sim, env.trkTunerGpu,
                                  obs::Cat::Tuner, "ingest",
                                  {{"n", static_cast<double>(*n)}});
                co_await env.tunerGpu.compute(ingest_per_image * *n);
                env.stages.tunerS += ingest_per_image * *n;
                if (env.sched)
                    env.sched->charge(env.jobId,
                                      ingest_per_image * *n);
            }
        }
        double train_t = epoch_per_image * static_cast<double>(seen) *
                         static_cast<double>(opt.tunerEpochs);
        if (env.sched)
            co_await env.sched->yield(env.jobId);
        {
            obs::SpanGuard sg(env.trace, env.sim, env.trkTunerGpu,
                              obs::Cat::Tuner, "train",
                              {{"run", static_cast<double>(r)},
                               {"n", static_cast<double>(seen)}});
            co_await env.tunerGpu.compute(train_t);
        }
        env.stages.tunerS += train_t;
        if (env.sched)
            env.sched->charge(env.jobId, train_t);
        env.tunerDone[r]->done();
    }
}

/**
 * Fault-mode watchdog (spawned only when the injector is armed): once
 * every store sink has drained no more features can arrive, so close
 * the per-run spools. A crash-induced shortfall then wakes the Tuner
 * with end-of-stream instead of leaving it blocked forever.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents
 * live in the dataflow's scope, which joins this task via s.run()
 * before they die)
 */
sim::Task
featureWatchdog(FtDmpEnv &env, sim::WaitGroup &stores_wg)
{
    co_await stores_wg.wait();
    for (auto &ch : env.runFeatures)
        ch->close();
}

/** Check-N-Run delta redistribution to every store (§5). @p fin
 * (multi-job only) signals the job monitor that the push finished.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents
 * live in the dataflow's scope, which joins this task via s.run()
 * before they die) */
sim::Task
deltaDistribution(FtDmpEnv &env, const ExperimentConfig &cfg,
                  const TrainOptions &opt, double *out_bytes,
                  sim::WaitGroup *fin)
{
    co_await env.tunerDone[static_cast<size_t>(opt.nRun) - 1]->wait();
    double delta_bytes = cfg.model->trainableParamsM() * 1e6 * 4.0 /
                         kDeltaCompressFactor;
    for (int i = 0; i < cfg.nStores; ++i) {
        // Deltas leave over the Tuner's *uplink*: duplex NICs mean
        // pushes never steal capacity from arriving features.
        co_await env.fabric.transfer(
            env.tunerNode, env.storeNodes[static_cast<size_t>(i)],
            delta_bytes, net::FlowClass::DeltaPush);
        *out_bytes += delta_bytes;
        if (!env.faults)
            continue;
        // Lost delta pushes retransmit with bounded exponential
        // backoff; an exhausted budget abandons the push (the store
        // keeps serving its stale model until the next run) and is
        // typed as an unrecovered MessageLoss. Retransmitted bytes
        // count toward distribution traffic — they crossed the wire.
        double backoff = env.faults->plan().msgRetryBackoffS;
        int resends = 0;
        while (env.faults->drawMessageLoss(i)) {
            if (++resends > env.faults->plan().msgRetryLimit) {
                ++env.faults->report().deltaPushFailures;
                env.faults->noteUnrecovered(
                    sim::FaultClass::MessageLoss, 0);
                break;
            }
            ++env.faults->report().messagesResent;
            env.faults->report().degradedS += backoff;
            if (env.trace)
                env.trace->instant(
                    env.trkFault, obs::Cat::Fault, "delta-loss",
                    env.sim.now(),
                    {{"store", static_cast<double>(i)}});
            {
                obs::SpanGuard sg(env.trace, env.sim, env.trkFault,
                                  obs::Cat::Stall, "retransmit");
                co_await env.sim.delay(backoff);
            }
            backoff *= 2.0;
            co_await env.fabric.transfer(
                env.tunerNode, env.storeNodes[static_cast<size_t>(i)],
                delta_bytes, net::FlowClass::DeltaPush);
            *out_bytes += delta_bytes;
        }
        if (resends > 0) {
            if (resends > env.faults->plan().msgRetryLimit)
                env.faults->noteMsgAbandoned(i);
            else
                env.faults->noteMsgRecovered(i);
        }
    }
    if (fin)
        fin->done();
}

/** Multi-job completion monitor: fires jobDone once the stores, the
 * Tuner, and (when enabled) the delta push have all drained. Spawned
 * only when a Cluster provided jobDone, so single-tenant runs never
 * see it. ndplint: allow(coroutine-ref-param, coroutine-escape: referents
 * live in the dataflow's scope, which joins this task via s.run()
 * before they die) */
sim::Task
ftJobMonitor(FtDmpEnv &env, sim::WaitGroup &stores_wg,
             sim::WaitGroup *delta_fin, sim::WaitGroup &job_done)
{
    co_await stores_wg.wait();
    co_await env.tunerDone.back()->wait();
    if (delta_fin)
        co_await delta_fin->wait();
    job_done.done();
}

} // namespace

struct FtDmpDataflow::Impl
{
    Impl(sim::Simulator &sim, const ExperimentConfig &config,
         const TrainOptions &options, const FtDmpPorts &p)
        : s(sim), cfg(config), opt(options), ports(p),
          env(sim, ports, options.nRun), gauges(p.trace), storesWg(sim),
          syncBarrier(sim, config.nStores)
    {}

    sim::Simulator &s;
    ExperimentConfig cfg;
    TrainOptions opt;
    FtDmpPorts ports;
    FtDmpEnv env;
    obs::GaugeSet gauges;
    sim::WaitGroup storesWg;
    sim::Barrier syncBarrier;
    std::unique_ptr<sim::RecoveryCoordinator> recovery;
    std::vector<std::unique_ptr<Pipeline>> pipes;
    std::unique_ptr<sim::WaitGroup> deltaFin;
    double distributionBytes = 0.0;
    size_t cut = 0;
    bool classifierOnStores = false;
};

FtDmpDataflow::FtDmpDataflow(sim::Simulator &s,
                             const ExperimentConfig &cfg,
                             const TrainOptions &opt,
                             const FtDmpPorts &ports)
    : impl_(std::make_unique<Impl>(s, cfg, opt, ports))
{
    assert(static_cast<int>(ports.stores.size()) == cfg.nStores);
    assert(ports.fleetIdx.size() == ports.stores.size());
    const models::ModelSpec &m = *cfg.model;
    impl_->cut = opt.resolveCut(m);
    assert(impl_->cut <= m.numBlocks());
    impl_->classifierOnStores = m.cutSplitsClassifier(impl_->cut);

    FtDmpEnv &env = impl_->env;
    obs::Tracer *tr = ports.trace;
    env.setupTrace(tr, ports.scope, ports.fleetIdx,
                   impl_->classifierOnStores ? cfg.nStores : 0,
                   !impl_->classifierOnStores);
    if (tr) {
        impl_->gauges.add(
            obs::scopedNode(ports.scope, "net"), "ingress.util",
            [e = &env] {
                return e->fabric.downlinkUtilization(
                    e->fabric.ingress());
            });
        impl_->gauges.add(
            obs::scopedNode(ports.scope, "net"), "flows.active",
            [e = &env] {
                return static_cast<double>(e->fabric.activeFlows());
            });
        impl_->gauges.add(obs::scopedNode(ports.scope, "tuner"),
                          "util.gpu", [e = &env] {
                              return e->tunerGpu.utilization();
                          });
        impl_->gauges.add(
            obs::scopedNode(ports.scope, "tuner"), "power.w",
            [probe = hw::PowerProbe{&impl_->cfg.tunerSpec,
                                    ports.tunerGpu, nullptr}] {
                return probe.watts();
            });
    }
    if (env.faults && !impl_->classifierOnStores) {
        impl_->recovery = std::make_unique<sim::RecoveryCoordinator>(
            s, *env.faults, cfg.nStores, opt.feBatch);
    }
}

FtDmpDataflow::~FtDmpDataflow() = default;

void
FtDmpDataflow::spawn()
{
    Impl &im = *impl_;
    FtDmpEnv &env = im.env;
    const ExperimentConfig &cfg = im.cfg;
    const TrainOptions &opt = im.opt;
    const models::ModelSpec &m = *cfg.model;
    obs::Tracer *tr = im.ports.trace;

    if (im.recovery)
        im.s.spawn(im.recovery->run());

    // Feature extraction is the NPE dataflow (§5.4): per store, read
    // compressed binaries, decompress, forward through [0, cut), ship
    // the feature tensors to the Tuner's per-run spool.
    double fe_base = models::feSecondsPerImage(*cfg.storeSpec.gpu, m,
                                               im.cut, opt.feBatch);
    std::vector<sim::Channel<int> *> run_out;
    for (auto &ch : env.runFeatures)
        run_out.push_back(ch.get());
    bool piped = opt.pipelined;

    for (int i = 0; i < cfg.nStores; ++i) {
        StoreStations &st = *im.ports.stores[static_cast<size_t>(i)];
        const int fidx = im.ports.fleetIdx[static_cast<size_t>(i)];
        const std::string node = obs::scopedNode(
            im.ports.scope, "store" + std::to_string(fidx));
        if (tr) {
            hw::Disk *disk = &st.disk;
            hw::CpuPool *cpu = &st.cpu;
            hw::GpuExec *gpu = &st.gpu;
            im.gauges.add(node, "util.disk",
                          [disk] { return disk->utilization(); });
            im.gauges.add(node, "util.gpu",
                          [gpu] { return gpu->utilization(); });
            im.gauges.add(node, "power.w",
                          [probe = hw::PowerProbe{&im.cfg.storeSpec,
                                                  gpu, cpu}] {
                              return probe.watts();
                          });
        }
        if (im.classifierOnStores) {
            im.storesWg.add(1);
            im.s.spawn(storeLocalTrainProc(env, st, im.cfg, im.opt, i,
                                           fidx, im.syncBarrier,
                                           im.storesWg));
        } else {
            PipelineSpec spec;
            spec.pipelined = true; // opt.pipelined gates runs, below
            spec.batch = opt.feBatch;
            spec.nRun = opt.nRun;
            spec.readBytesPerItem = m.inputMB() * 1e6 / kCompressionRatio;
            // Without run pipelining a store may only start run r once
            // the Tuner finished training on run r-1 (Fig. 17).
            spec.runGate = [&env, piped](int r) -> sim::WaitGroup * {
                if (piped || r == 0)
                    return nullptr;
                return env.tunerDone[static_cast<size_t>(r) - 1].get();
            };
            spec.cpu = &st.cpu;
            spec.cpuOps = {CpuStageOp::decompress(m.inputMB(),
                                                  cfg.npe.decompressCores)};
            spec.gpu = &st.gpu;
            spec.computeSecondsPerItem = fe_base / opt.speedOf(i);
            spec.fabric = &env.fabric;
            spec.shipSrc = env.storeNodes[static_cast<size_t>(i)];
            spec.shipDst = env.tunerNode;
            spec.shipClass = net::FlowClass::FeatureShip;
            spec.shipBytesPerItem = m.transferMBAt(im.cut) * 1e6;
            spec.runOut = run_out;
            spec.done = &im.storesWg;
            spec.sched = im.ports.sched;
            spec.jobId = im.ports.jobId;
            spec.faults = env.faults;
            spec.faultStoreBase = fidx;
            spec.recovery = im.recovery.get();
            spec.trace = tr;
            spec.traceNode = node;
            std::vector<ProducerSpec> prods(1);
            prods[0].disk = &st.disk;
            prods[0].node = env.storeNodes[static_cast<size_t>(i)];
            for (int r = 0; r < opt.nRun; ++r)
                prods[0].runItems.push_back(
                    runShare(cfg.nImages, opt.nRun, cfg.nStores, r, i));
            im.pipes.push_back(std::make_unique<Pipeline>(
                im.s, std::move(spec), std::move(prods)));
            im.pipes.back()->spawn();
        }
    }
    if (im.classifierOnStores) {
        // No Tuner stage; the stores converge among themselves. Mark
        // the tuner gates done so delta distribution can proceed.
        for (auto &wg : env.tunerDone)
            wg->done();
    } else {
        im.s.spawn(tunerProc(env, im.cfg, im.opt, im.cut));
        if (env.faults)
            im.s.spawn(featureWatchdog(env, im.storesWg));
    }
    if (opt.distributeDeltas) {
        if (im.ports.jobDone) {
            im.deltaFin = std::make_unique<sim::WaitGroup>(im.s);
            im.deltaFin->add(1);
        }
        im.s.spawn(deltaDistribution(env, im.cfg, im.opt,
                                     &im.distributionBytes,
                                     im.deltaFin.get()));
    }
    if (im.ports.jobDone)
        im.s.spawn(ftJobMonitor(env, im.storesWg, im.deltaFin.get(),
                                *im.ports.jobDone));
}

void
FtDmpDataflow::finalize(TrainReport &rep)
{
    Impl &im = *impl_;
    rep.stages = im.env.stages;
    for (auto &pipe : im.pipes) {
        pipe->finalize();
        rep.stages += pipe->metrics();
        rep.dataTrafficBytes += pipe->metrics().shipBytes;
        im.env.feEndTime =
            std::max(im.env.feEndTime, pipe->metrics().lastItemS);
    }
    rep.syncTrafficBytes = im.env.syncTraffic;
    rep.distributionBytes = im.distributionBytes;
}

double
FtDmpDataflow::feEndTime() const
{
    return impl_->env.feEndTime;
}

TrainReport
runFtDmpTraining(const ExperimentConfig &cfg, const TrainOptions &opt)
{
    cfg.validate().orThrow();
    opt.validate().orThrow();

    TrainReport rep;
    rep.images = cfg.nImages;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    // Topology: one fabric node per store plus the Tuner, all hanging
    // off one ToR. Stores go first so fault store index i is fabric
    // node i; every feature/sync/delta flow then shares the Tuner's
    // NIC structurally (§4.1).
    net::NetFabric fabric(s);
    FtDmpPorts ports;
    ports.fabric = &fabric;
    for (int i = 0; i < cfg.nStores; ++i)
        ports.storeNodes.push_back(fabric.addNode(cfg.storeSpec.nic));
    ports.tunerNode = fabric.addNode(cfg.nic());
    fabric.setIngress(ports.tunerNode);
    hw::GpuExec tuner_gpu(s, *cfg.tunerSpec.gpu, cfg.tunerSpec.nGpus);
    ports.tunerGpu = &tuner_gpu;
    // Fault plumbing: the injector always exists, but the hooks only
    // see it when the plan is non-empty — an empty plan leaves every
    // dataflow on the exact fault-free event sequence.
    sim::FaultInjector injector(s, cfg.faults, cfg.nStores);
    injector.attachObserver(obs::HealthMonitor::current());
    ports.faults = injector.armed() ? &injector : nullptr;
    fabric.attachFaults(ports.faults);
    fabric.setTracer(tr);
    ports.trace = tr;

    std::vector<std::unique_ptr<StoreStations>> stations;
    for (int i = 0; i < cfg.nStores; ++i) {
        stations.push_back(
            std::make_unique<StoreStations>(s, cfg.storeSpec));
        ports.stores.push_back(stations.back().get());
        ports.fleetIdx.push_back(i);
    }

    FtDmpDataflow flow(s, cfg, opt, ports);
    flow.spawn();
    s.run();

    rep.faults = injector.report();
    rep.net = fabric.report();
    flow.finalize(rep);

    rep.seconds = s.now();
    rep.trainIps = rep.seconds > 0.0
                       ? static_cast<double>(cfg.nImages) / rep.seconds
                       : 0.0;
    rep.feIps = flow.feEndTime() > 0.0
                    ? static_cast<double>(cfg.nImages) / flow.feEndTime()
                    : 0.0;

    for (size_t i = 0; i < stations.size(); ++i) {
        double gu = stations[i]->gpu.utilization();
        double cu = stations[i]->cpu.utilization();
        auto p = hw::serverPower(cfg.storeSpec, gu, cu);
        rep.perServer.push_back(
            {cfg.storeSpec.name + "#" + std::to_string(i), p});
        rep.power += p;
    }
    auto tuner_power = hw::serverPower(
        cfg.tunerSpec, tuner_gpu.utilization(), 0.05);
    rep.perServer.push_back({cfg.tunerSpec.name, tuner_power});
    rep.power += tuner_power;
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

namespace {

/** Classifier training on the host, once feature extraction drains.
 * The host GPU is the shared device under multi-job runs, so the
 * training block is yielded and charged like any other GPU stage.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents
 * live in the dataflow's scope, which joins this task via s.run()
 * before they die) */
sim::Task
srvClassifierTrain(const sim::Simulator &s, hw::GpuExec &gpus,
                   sim::WaitGroup &fe_done, double seconds,
                   double &tuner_s, obs::Tracer *tr, int trk,
                   sched::Scheduler *sched, int job_id,
                   sim::WaitGroup *fin)
{
    co_await fe_done.wait();
    if (sched)
        co_await sched->yield(job_id);
    {
        obs::SpanGuard sg(tr, s, trk, obs::Cat::Tuner, "train");
        co_await gpus.compute(seconds);
    }
    tuner_s += seconds;
    if (sched)
        sched->charge(job_id, seconds);
    if (fin)
        fin->done();
}

/** Multi-job completion monitor for SRV fine-tuning.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents
 * live in the dataflow's scope, which joins this task via s.run()
 * before they die) */
sim::Task
srvJobMonitor(sim::WaitGroup &ct_fin, sim::WaitGroup &job_done)
{
    co_await ct_fin.wait();
    job_done.done();
}

} // namespace

struct SrvFineTuneDataflow::Impl
{
    Impl(sim::Simulator &sim, const ExperimentConfig &config,
         const SrvFineTunePorts &p)
        : s(sim), cfg(config), ports(p), gauges(p.trace), feDone(sim),
          ctFin(sim)
    {}

    sim::Simulator &s;
    ExperimentConfig cfg;
    SrvFineTunePorts ports;
    obs::GaugeSet gauges;
    sim::WaitGroup feDone;
    sim::WaitGroup ctFin;
    std::unique_ptr<Pipeline> pipe;
    double ctSeconds = 0.0;
    double ctTunerS = 0.0;
    int trkTuner = 0;
};

SrvFineTuneDataflow::SrvFineTuneDataflow(sim::Simulator &s,
                                         const ExperimentConfig &cfg,
                                         SrvVariant variant,
                                         int tuner_epochs,
                                         bool pipelined,
                                         const SrvFineTunePorts &ports)
    : impl_(std::make_unique<Impl>(s, cfg, ports))
{
    Impl &im = *impl_;
    const models::ModelSpec &m = *cfg.model;
    obs::Tracer *tr = ports.trace;
    const std::string host_node = obs::scopedNode(ports.scope, "host");
    if (tr) {
        im.gauges.add(host_node, "util.cpu", [c = ports.cpu] {
            return c->utilization();
        });
        im.gauges.add(host_node, "util.gpu", [g = ports.gpus] {
            return g->utilization();
        });
        im.gauges.add(host_node, "power.w",
                      [probe = hw::PowerProbe{&im.cfg.hostSpec,
                                              ports.gpus, ports.cpu}] {
                          return probe.watts();
                      });
        im.trkTuner = tr->track(host_node, "tuner");
    }
    size_t cut = m.classifierStart();
    double fe_per_image = models::feSecondsPerImage(
        *cfg.hostSpec.gpu, m, cut, cfg.npe.batchSize);
    im.ctSeconds =
        models::tunerEpochSecondsPerImage(*cfg.hostSpec.gpu, m,
                                          kTrainBatch) *
        static_cast<double>(cfg.nImages) *
        static_cast<double>(tuner_epochs);

    double wire = 0.0;
    bool decompress = false;
    switch (variant) {
      case SrvVariant::Preprocessed:
        wire = m.inputMB() * 1e6;
        break;
      case SrvVariant::Compressed:
        wire = m.inputMB() * 1e6 / kCompressionRatio;
        decompress = true;
        break;
      default:
        break; // host-local data
    }

    PipelineSpec spec;
    spec.pipelined = pipelined;
    spec.batch = cfg.npe.batchSize;
    spec.depth = 2 * kStageDepth;
    spec.readBytesPerItem = wire;
    spec.fabric = ports.fabric;
    spec.wireDst = ports.hostNode;
    spec.wireClass = net::FlowClass::BulkInput;
    spec.wireBytesPerItem = wire;
    spec.cpu = ports.cpu;
    if (decompress && pipelined)
        spec.cpuOps = {
            CpuStageOp::decompress(m.inputMB(), kSrvCpuStageCores)};
    spec.gpu = ports.gpus;
    spec.computeSecondsPerItem = fe_per_image;
    spec.gpuWorkers = cfg.hostSpec.nGpus;
    spec.done = &im.feDone;
    spec.sched = ports.sched;
    spec.jobId = ports.jobId;
    spec.faults = ports.faults;
    spec.trace = tr;
    spec.traceNode = host_node;

    std::vector<ProducerSpec> producers;
    if (wire > 0.0) {
        for (int i = 0; i < cfg.srvStorageServers; ++i) {
            ProducerSpec p;
            p.disk = im.ports.disks[static_cast<size_t>(i)];
            p.node = im.ports.srvNodes[static_cast<size_t>(i)];
            p.runItems = {
                evenShare(cfg.nImages, cfg.srvStorageServers, i)};
            p.traceNode = obs::scopedNode(ports.scope,
                                          "srv" + std::to_string(i));
            if (tr)
                im.gauges.add(p.traceNode, "util.disk",
                              [d = p.disk] { return d->utilization(); });
            producers.push_back(std::move(p));
        }
    } else {
        ProducerSpec p;
        p.runItems = {cfg.nImages};
        producers.push_back(std::move(p));
    }
    im.pipe = std::make_unique<Pipeline>(s, std::move(spec),
                                         std::move(producers));
}

SrvFineTuneDataflow::~SrvFineTuneDataflow() = default;

void
SrvFineTuneDataflow::spawn()
{
    Impl &im = *impl_;
    im.pipe->spawn();
    im.ctFin.add(1);
    im.s.spawn(srvClassifierTrain(im.s, *im.ports.gpus, im.feDone,
                                  im.ctSeconds, im.ctTunerS,
                                  im.ports.trace, im.trkTuner,
                                  im.ports.sched, im.ports.jobId,
                                  &im.ctFin));
    if (im.ports.jobDone)
        im.s.spawn(srvJobMonitor(im.ctFin, *im.ports.jobDone));
}

void
SrvFineTuneDataflow::finalize(TrainReport &rep)
{
    Impl &im = *impl_;
    rep.stages.tunerS += im.ctTunerS;
    im.pipe->finalize();
    rep.stages += im.pipe->metrics();
}

TrainReport
runSrvFineTuning(const ExperimentConfig &cfg, SrvVariant variant,
                 int tuner_epochs, bool pipelined)
{
    cfg.validate().orThrow();
    TrainReport rep;
    rep.images = cfg.nImages;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    obs::GaugeSet gauges(tr);
    HostStations host(s, cfg.hostSpec);
    // Topology: the SRV storage servers and the host on one ToR; all
    // staged input funnels into the host's downlink.
    net::NetFabric fabric(s);
    SrvFineTunePorts ports;
    ports.fabric = &fabric;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        ports.srvNodes.push_back(fabric.addNode(cfg.srvStoreSpec.nic));
    ports.hostNode = fabric.addNode(cfg.nic());
    fabric.setIngress(ports.hostNode);
    fabric.setTracer(tr);
    if (tr)
        gauges.add("net", "ingress.util", [&fabric] {
            return fabric.downlinkUtilization(fabric.ingress());
        });
    // SRV has no peer to re-dispatch to (one host owns the GPUs), so
    // faults here degrade or type-fail the run but never re-assign.
    sim::FaultInjector injector(s, cfg.faults, cfg.srvStorageServers);
    injector.attachObserver(obs::HealthMonitor::current());
    fabric.attachFaults(injector.armed() ? &injector : nullptr);
    ports.faults = injector.armed() ? &injector : nullptr;
    ports.gpus = &host.gpus;
    ports.cpu = &host.cpu;
    ports.trace = tr;

    std::vector<std::unique_ptr<hw::Disk>> disks;
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        disks.push_back(
            std::make_unique<hw::Disk>(s, cfg.srvStoreSpec.disk));
        ports.disks.push_back(disks.back().get());
    }

    SrvFineTuneDataflow flow(s, cfg, variant, tuner_epochs, pipelined,
                             ports);
    flow.spawn();
    s.run();

    rep.faults = injector.report();
    rep.net = fabric.report();
    flow.finalize(rep);
    rep.seconds = s.now();
    rep.trainIps = rep.seconds > 0.0
                       ? static_cast<double>(cfg.nImages) / rep.seconds
                       : 0.0;
    rep.feIps = rep.trainIps;
    rep.dataTrafficBytes = fabric.bytesInto(ports.hostNode);

    auto host_power = hw::serverPower(
        cfg.hostSpec, host.gpus.utilization(), host.cpu.utilization());
    rep.perServer.push_back({cfg.hostSpec.name, host_power});
    rep.power += host_power;
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        double cpu_util = disks[static_cast<size_t>(i)]->utilization() *
                          2.0 / cfg.srvStoreSpec.cpu.vcpus;
        auto p = hw::serverPower(cfg.srvStoreSpec, 0.0, cpu_util);
        rep.perServer.push_back(
            {cfg.srvStoreSpec.name + "#" + std::to_string(i), p});
        rep.power += p;
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)

} // namespace ndp::core
