#include "core/training.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "core/npe_common.h"
#include "core/pipeline.h"
#include "hw/devices.h"
#include "hw/power.h"
#include "models/throughput.h"
#include "sim/barrier.h"
#include "sim/channel.h"
#include "sim/simulator.h"
#include "sim/wait_group.h"

namespace ndp::core {

// Coroutines below borrow run-scope state by reference: every Task is
// spawned on the Simulator owned by the enclosing run*() entry point,
// and s.run() drains the event queue (joining all of them) before any
// referent goes out of scope, so the references cannot dangle.
// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)

namespace {

/** Everything the coroutines share for one FT-DMP run. */
struct FtDmpEnv
{
    FtDmpEnv(sim::Simulator &s, const ExperimentConfig &cfg, int n_run)
        : sim(s), fabric(s), tunerGpu(s, *cfg.tunerSpec.gpu,
                                      cfg.tunerSpec.nGpus)
    {
        // Topology: one fabric node per store plus the Tuner, all
        // hanging off one ToR. Stores go first so fault store index i
        // is fabric node i; every feature/sync/delta flow then shares
        // the Tuner's NIC structurally (§4.1).
        for (int i = 0; i < cfg.nStores; ++i)
            storeNodes.push_back(fabric.addNode(cfg.storeSpec.nic));
        tunerNode = fabric.addNode(cfg.nic());
        fabric.setIngress(tunerNode);
        // The Tuner spools arriving features to its local NVMe before
        // each training run (§5.2), so the feature path exerts no
        // back-pressure on the stores: effectively unbounded buffers.
        constexpr size_t spool = static_cast<size_t>(1) << 40;
        for (int r = 0; r < n_run; ++r) {
            runFeatures.push_back(
                std::make_unique<sim::Channel<int>>(s, spool));
            tunerDone.push_back(std::make_unique<sim::WaitGroup>(s));
            tunerDone.back()->add(1);
        }
    }

    sim::Simulator &sim;
    net::NetFabric fabric;
    std::vector<net::NodeId> storeNodes;
    net::NodeId tunerNode = net::kNoNode;
    hw::GpuExec tunerGpu;
    std::vector<std::unique_ptr<sim::Channel<int>>> runFeatures;
    std::vector<std::unique_ptr<sim::WaitGroup>> tunerDone;

    /** Non-null only when a non-empty FaultPlan armed the run. */
    sim::FaultInjector *faults = nullptr;

    StageMetrics stages;
    double syncTraffic = 0.0;
    double feEndTime = 0.0;

    /** @name Trace plumbing (null tracer = no-ops everywhere)
     * @{ */
    obs::Tracer *trace = nullptr;
    /** Per-store tracks for the bespoke "+FC" coroutine (the NPE
     *  pipelines intern their own). */
    std::vector<int> trkStoreDisk, trkStoreGpu, trkStoreSync;
    int trkTunerGpu = 0;
    int trkFault = 0;
    /** @} */

    void
    setupTrace(obs::Tracer *t, int plus_fc_stores, bool has_tuner)
    {
        trace = t;
        if (!t)
            return;
        for (int i = 0; i < plus_fc_stores; ++i) {
            std::string node = "store" + std::to_string(i);
            trkStoreDisk.push_back(t->track(node, "disk"));
            trkStoreGpu.push_back(t->track(node, "gpu"));
            trkStoreSync.push_back(t->track(node, "sync"));
        }
        if (has_tuner)
            trkTunerGpu = t->track("tuner", "gpu");
        if (faults)
            trkFault = t->track("tuner", "faults");
    }
};

/**
 * Naive-NDP store ("+FC"): the whole model, classifier included, runs
 * on the store; every iteration pays a weight synchronization over the
 * shared network (§4.1). This is not an NPE dataflow — it is the
 * anti-pattern FT-DMP replaces — so it stays a bespoke coroutine
 * rather than a Pipeline configuration.
 * ndplint: allow(coroutine-ref-param) — referents live in
 * runFtDmpTraining's scope, which joins this task via s.run().
 */
sim::Task
storeLocalTrainProc(FtDmpEnv &env, StoreStations &st,
                    const ExperimentConfig &cfg, const TrainOptions &opt,
                    int store_idx, sim::Barrier &sync_barrier,
                    sim::WaitGroup &stores_wg)
{
    const models::ModelSpec &m = *cfg.model;
    // Naive NDP predates the NPE: binaries are stored uncompressed.
    double read_bytes = m.inputMB() * 1e6;
    // Epoch 1 extracts and caches features (the weight-freeze forward
    // is identical to inference, §2.1); later epochs retrain the
    // classifier from the cache. Every iteration pays the all-reduce
    // of the trainable weights across stores — the cost FT-DMP exists
    // to eliminate — and the all-reduce is a fleet-wide barrier: the
    // fastest store waits for the slowest.
    double speed = opt.speedOf(store_idx);
    double fe_per_image =
        models::feSecondsPerImage(*cfg.storeSpec.gpu, m,
                                  m.classifierStart(), opt.feBatch) /
        speed;
    // Data parallelism keeps the *global* batch fixed, so each store
    // iterates (and synchronizes) more often as stores are added —
    // the linear scaling §4.1 observes.
    int store_batch =
        std::max(1, opt.trainBatch / std::max(1, cfg.nStores));
    double head_per_image =
        models::tunerEpochSecondsPerImage(*cfg.storeSpec.gpu, m,
                                          store_batch) /
        speed;
    double sync_bytes_per_iter =
        2.0 * m.trainableParamsM() * 1e6 * 4.0;

    for (int r = 0; r < opt.nRun; ++r) {
        uint64_t share = runShare(cfg.nImages, opt.nRun, cfg.nStores, r,
                                  store_idx);
        // Store 0 always holds the largest share; every store runs
        // the same number of all-reduce rounds so the barrier closes.
        uint64_t max_share =
            runShare(cfg.nImages, opt.nRun, cfg.nStores, r, 0);
        uint64_t iters_per_epoch =
            (max_share + static_cast<uint64_t>(store_batch) - 1) /
            static_cast<uint64_t>(store_batch);
        for (int epoch = 0; epoch < opt.tunerEpochs; ++epoch) {
            uint64_t left = share;
            for (uint64_t it = 0; it < iters_per_epoch; ++it) {
                if (env.faults) {
                    if (double d = env.faults->stallDelay(
                            store_idx, env.sim.now());
                        d > 0.0) {
                        env.faults->report().degradedS += d;
                        {
                            obs::SpanGuard sg(
                                env.trace, env.sim,
                                env.trace ? env.trkStoreDisk
                                                [static_cast<size_t>(
                                                    store_idx)]
                                          : 0,
                                obs::Cat::Stall, "stall");
                            co_await env.sim.delay(d);
                        }
                    }
                    if (env.faults->crashed(store_idx,
                                            env.sim.now())) {
                        // The synchronized fleet cannot re-assign a
                        // shard (every store trains the full model):
                        // the dead store's unextracted images are
                        // simply lost, and it must leave the barrier
                        // or the surviving all-reduces hang — exactly
                        // the fragility FT-DMP's no-sync design
                        // removes (§4.1).
                        uint64_t lost = epoch == 0 ? left : 0;
                        for (int rr = r + 1; rr < opt.nRun; ++rr)
                            lost += runShare(cfg.nImages, opt.nRun,
                                             cfg.nStores, rr,
                                             store_idx);
                        env.faults->noteUnrecovered(
                            sim::FaultClass::StoreCrash, lost);
                        if (env.trace)
                            env.trace->instant(
                                env.trkFault, obs::Cat::Fault,
                                "crash", env.sim.now(),
                                {{"store", static_cast<double>(
                                               store_idx)},
                                 {"lost",
                                  static_cast<double>(lost)}});
                        sync_barrier.leave();
                        env.feEndTime =
                            std::max(env.feEndTime, env.sim.now());
                        stores_wg.done();
                        co_return;
                    }
                }
                int n = static_cast<int>(std::min<uint64_t>(
                    static_cast<uint64_t>(store_batch), left));
                left -= static_cast<uint64_t>(n);

                const size_t sidx = static_cast<size_t>(store_idx);
                if (n > 0 && epoch == 0) {
                    double read_t =
                        st.disk.readServiceTime(read_bytes * n);
                    {
                        obs::SpanGuard sg(
                            env.trace, env.sim,
                            env.trace ? env.trkStoreDisk[sidx] : 0,
                            obs::Cat::Disk, "read",
                            {{"n", static_cast<double>(n)}});
                        co_await st.disk.read(read_bytes * n);
                    }
                    env.stages.readS += read_t;

                    {
                        obs::SpanGuard sg(
                            env.trace, env.sim,
                            env.trace ? env.trkStoreGpu[sidx] : 0,
                            obs::Cat::Gpu, "fe",
                            {{"n", static_cast<double>(n)}});
                        co_await st.gpu.compute(fe_per_image * n);
                    }
                    env.stages.computeS += fe_per_image * n;
                }
                if (n > 0) {
                    obs::SpanGuard sg(
                        env.trace, env.sim,
                        env.trace ? env.trkStoreGpu[sidx] : 0,
                        obs::Cat::Gpu, "train",
                        {{"n", static_cast<double>(n)}});
                    co_await st.gpu.compute(head_per_image * n);
                    env.stages.computeS += head_per_image * n;
                }

                env.stages.syncS += env.fabric.serviceTime(
                    env.storeNodes[sidx],
                    env.tunerNode, sync_bytes_per_iter);
                {
                    obs::SpanGuard sg(
                        env.trace, env.sim,
                        env.trace ? env.trkStoreSync[sidx] : 0,
                        obs::Cat::Sync, "all-reduce",
                        {{"bytes", sync_bytes_per_iter}});
                    co_await env.fabric.transfer(
                        env.storeNodes[sidx],
                        env.tunerNode, sync_bytes_per_iter,
                        net::FlowClass::Sync);
                    env.syncTraffic += sync_bytes_per_iter;
                    co_await sync_barrier.arrive();
                }
            }
        }
        env.feEndTime = std::max(env.feEndTime, env.sim.now());
    }
    stores_wg.done();
}

/** Tuner: ingest features per run, then train the classifier.
 * ndplint: allow(coroutine-ref-param) — referents live in
 * runFtDmpTraining's scope, which joins this task via s.run(). */
sim::Task
tunerProc(FtDmpEnv &env, const ExperimentConfig &cfg,
          const TrainOptions &opt, size_t cut)
{
    const models::ModelSpec &m = *cfg.model;
    double ingest_per_image = models::tunerIngestSecondsPerImage(
        *cfg.tunerSpec.gpu, m, cut, opt.feBatch);
    double epoch_per_image = models::tunerEpochSecondsPerImage(
        *cfg.tunerSpec.gpu, m, opt.trainBatch);

    for (int r = 0; r < opt.nRun; ++r) {
        uint64_t run_imgs = evenShare(cfg.nImages, opt.nRun, r);
        uint64_t seen = 0;
        while (seen < run_imgs) {
            auto n = co_await env.runFeatures[r]->get();
            if (!n) {
                // Channel closed with a shortfall: every store sink
                // has exited and re-dispatch is exhausted, so the
                // missing features are typed losses. Train on what
                // arrived rather than hanging.
                break;
            }
            seen += static_cast<uint64_t>(*n);
            if (ingest_per_image > 0.0) {
                obs::SpanGuard sg(env.trace, env.sim, env.trkTunerGpu,
                                  obs::Cat::Tuner, "ingest",
                                  {{"n", static_cast<double>(*n)}});
                co_await env.tunerGpu.compute(ingest_per_image * *n);
                env.stages.tunerS += ingest_per_image * *n;
            }
        }
        double train_t = epoch_per_image * static_cast<double>(seen) *
                         static_cast<double>(opt.tunerEpochs);
        {
            obs::SpanGuard sg(env.trace, env.sim, env.trkTunerGpu,
                              obs::Cat::Tuner, "train",
                              {{"run", static_cast<double>(r)},
                               {"n", static_cast<double>(seen)}});
            co_await env.tunerGpu.compute(train_t);
        }
        env.stages.tunerS += train_t;
        env.tunerDone[r]->done();
    }
}

/**
 * Fault-mode watchdog (spawned only when the injector is armed): once
 * every store sink has drained no more features can arrive, so close
 * the per-run spools. A crash-induced shortfall then wakes the Tuner
 * with end-of-stream instead of leaving it blocked forever.
 * ndplint: allow(coroutine-ref-param) — referents live in
 * runFtDmpTraining's scope, which joins this task via s.run().
 */
sim::Task
featureWatchdog(FtDmpEnv &env, sim::WaitGroup &stores_wg)
{
    co_await stores_wg.wait();
    for (auto &ch : env.runFeatures)
        ch->close();
}

/** Check-N-Run delta redistribution to every store (§5).
 * ndplint: allow(coroutine-ref-param) — referents live in
 * runFtDmpTraining's scope, which joins this task via s.run(). */
sim::Task
deltaDistribution(FtDmpEnv &env, const ExperimentConfig &cfg,
                  const TrainOptions &opt, double *out_bytes)
{
    co_await env.tunerDone[static_cast<size_t>(opt.nRun) - 1]->wait();
    double delta_bytes = cfg.model->trainableParamsM() * 1e6 * 4.0 /
                         kDeltaCompressFactor;
    for (int i = 0; i < cfg.nStores; ++i) {
        // Deltas leave over the Tuner's *uplink*: duplex NICs mean
        // pushes never steal capacity from arriving features.
        co_await env.fabric.transfer(
            env.tunerNode, env.storeNodes[static_cast<size_t>(i)],
            delta_bytes, net::FlowClass::DeltaPush);
        *out_bytes += delta_bytes;
        if (!env.faults)
            continue;
        // Lost delta pushes retransmit with bounded exponential
        // backoff; an exhausted budget abandons the push (the store
        // keeps serving its stale model until the next run) and is
        // typed as an unrecovered MessageLoss. Retransmitted bytes
        // count toward distribution traffic — they crossed the wire.
        double backoff = env.faults->plan().msgRetryBackoffS;
        int resends = 0;
        while (env.faults->drawMessageLoss(i)) {
            if (++resends > env.faults->plan().msgRetryLimit) {
                ++env.faults->report().deltaPushFailures;
                env.faults->noteUnrecovered(
                    sim::FaultClass::MessageLoss, 0);
                break;
            }
            ++env.faults->report().messagesResent;
            env.faults->report().degradedS += backoff;
            if (env.trace)
                env.trace->instant(
                    env.trkFault, obs::Cat::Fault, "delta-loss",
                    env.sim.now(),
                    {{"store", static_cast<double>(i)}});
            {
                obs::SpanGuard sg(env.trace, env.sim, env.trkFault,
                                  obs::Cat::Stall, "retransmit");
                co_await env.sim.delay(backoff);
            }
            backoff *= 2.0;
            co_await env.fabric.transfer(
                env.tunerNode, env.storeNodes[static_cast<size_t>(i)],
                delta_bytes, net::FlowClass::DeltaPush);
            *out_bytes += delta_bytes;
        }
    }
}

} // namespace

TrainReport
runFtDmpTraining(const ExperimentConfig &cfg, const TrainOptions &opt)
{
    cfg.validate().orThrow();
    opt.validate().orThrow();
    const models::ModelSpec &m = *cfg.model;
    size_t cut = opt.resolveCut(m);
    assert(cut <= m.numBlocks());
    bool classifier_on_stores = m.cutSplitsClassifier(cut);

    TrainReport rep;
    rep.images = cfg.nImages;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    obs::GaugeSet gauges(tr);
    FtDmpEnv env(s, cfg, opt.nRun);
    // Fault plumbing: the injector always exists, but the hooks only
    // see it when the plan is non-empty — an empty plan leaves every
    // dataflow on the exact fault-free event sequence.
    sim::FaultInjector injector(s, cfg.faults, cfg.nStores);
    env.faults = injector.armed() ? &injector : nullptr;
    env.fabric.attachFaults(env.faults);
    env.fabric.setTracer(tr);
    env.setupTrace(tr, classifier_on_stores ? cfg.nStores : 0,
                   !classifier_on_stores);
    if (tr) {
        gauges.add("net", "ingress.util", [&env] {
            return env.fabric.downlinkUtilization(
                env.fabric.ingress());
        });
        gauges.add("net", "flows.active", [&env] {
            return static_cast<double>(env.fabric.activeFlows());
        });
        gauges.add("tuner", "util.gpu",
                   [&env] { return env.tunerGpu.utilization(); });
        gauges.add("tuner", "power.w",
                   [probe = hw::PowerProbe{&cfg.tunerSpec,
                                           &env.tunerGpu, nullptr}] {
                       return probe.watts();
                   });
    }
    std::unique_ptr<sim::RecoveryCoordinator> recovery;
    if (env.faults && !classifier_on_stores) {
        recovery = std::make_unique<sim::RecoveryCoordinator>(
            s, injector, cfg.nStores, opt.feBatch);
        s.spawn(recovery->run());
    }
    // Counts store sinks: Pipeline::spawn registers its own workers;
    // the bespoke "+FC" coroutine registers itself below.
    sim::WaitGroup stores_wg(s);
    sim::Barrier sync_barrier(s, cfg.nStores);

    struct Store
    {
        Store(sim::Simulator &s, const hw::ServerSpec &spec)
            : stations(s, spec)
        {}
        StoreStations stations;
        std::unique_ptr<Pipeline> pipe;
    };

    // Feature extraction is the NPE dataflow (§5.4): per store, read
    // compressed binaries, decompress, forward through [0, cut), ship
    // the feature tensors to the Tuner's per-run spool.
    double fe_base = models::feSecondsPerImage(*cfg.storeSpec.gpu, m,
                                               cut, opt.feBatch);
    std::vector<sim::Channel<int> *> run_out;
    for (auto &ch : env.runFeatures)
        run_out.push_back(ch.get());
    bool piped = opt.pipelined;

    std::vector<std::unique_ptr<Store>> stores;
    for (int i = 0; i < cfg.nStores; ++i) {
        auto st = std::make_unique<Store>(s, cfg.storeSpec);
        if (tr) {
            const std::string node = "store" + std::to_string(i);
            hw::Disk *disk = &st->stations.disk;
            hw::CpuPool *cpu = &st->stations.cpu;
            hw::GpuExec *gpu = &st->stations.gpu;
            gauges.add(node, "util.disk",
                       [disk] { return disk->utilization(); });
            gauges.add(node, "util.gpu",
                       [gpu] { return gpu->utilization(); });
            gauges.add(node, "power.w",
                       [probe = hw::PowerProbe{&cfg.storeSpec, gpu,
                                               cpu}] {
                           return probe.watts();
                       });
        }
        if (classifier_on_stores) {
            stores_wg.add(1);
            s.spawn(storeLocalTrainProc(env, st->stations, cfg, opt, i,
                                        sync_barrier, stores_wg));
        } else {
            PipelineSpec spec;
            spec.pipelined = true; // opt.pipelined gates runs, below
            spec.batch = opt.feBatch;
            spec.nRun = opt.nRun;
            spec.readBytesPerItem = m.inputMB() * 1e6 / kCompressionRatio;
            // Without run pipelining a store may only start run r once
            // the Tuner finished training on run r-1 (Fig. 17).
            spec.runGate = [&env, piped](int r) -> sim::WaitGroup * {
                if (piped || r == 0)
                    return nullptr;
                return env.tunerDone[static_cast<size_t>(r) - 1].get();
            };
            spec.cpu = &st->stations.cpu;
            spec.cpuOps = {CpuStageOp::decompress(m.inputMB(),
                                                  cfg.npe.decompressCores)};
            spec.gpu = &st->stations.gpu;
            spec.computeSecondsPerItem = fe_base / opt.speedOf(i);
            spec.fabric = &env.fabric;
            spec.shipSrc = env.storeNodes[static_cast<size_t>(i)];
            spec.shipDst = env.tunerNode;
            spec.shipClass = net::FlowClass::FeatureShip;
            spec.shipBytesPerItem = m.transferMBAt(cut) * 1e6;
            spec.runOut = run_out;
            spec.done = &stores_wg;
            spec.faults = env.faults;
            spec.faultStoreBase = i;
            spec.recovery = recovery.get();
            spec.trace = tr;
            spec.traceNode = "store" + std::to_string(i);
            std::vector<ProducerSpec> prods(1);
            prods[0].disk = &st->stations.disk;
            prods[0].node = env.storeNodes[static_cast<size_t>(i)];
            for (int r = 0; r < opt.nRun; ++r)
                prods[0].runItems.push_back(
                    runShare(cfg.nImages, opt.nRun, cfg.nStores, r, i));
            st->pipe = std::make_unique<Pipeline>(s, std::move(spec),
                                                  std::move(prods));
            st->pipe->spawn();
        }
        stores.push_back(std::move(st));
    }
    if (classifier_on_stores) {
        // No Tuner stage; the stores converge among themselves. Mark
        // the tuner gates done so delta distribution can proceed.
        for (auto &wg : env.tunerDone)
            wg->done();
    } else {
        s.spawn(tunerProc(env, cfg, opt, cut));
        if (env.faults)
            s.spawn(featureWatchdog(env, stores_wg));
    }
    if (opt.distributeDeltas)
        s.spawn(deltaDistribution(env, cfg, opt, &rep.distributionBytes));

    s.run();

    rep.faults = injector.report();
    rep.net = env.fabric.report();
    rep.stages = env.stages;
    for (auto &st : stores) {
        if (!st->pipe)
            continue;
        st->pipe->finalize();
        rep.stages += st->pipe->metrics();
        rep.dataTrafficBytes += st->pipe->metrics().shipBytes;
        env.feEndTime =
            std::max(env.feEndTime, st->pipe->metrics().lastItemS);
    }

    rep.seconds = s.now();
    rep.trainIps = rep.seconds > 0.0
                       ? static_cast<double>(cfg.nImages) / rep.seconds
                       : 0.0;
    rep.feIps = env.feEndTime > 0.0
                    ? static_cast<double>(cfg.nImages) / env.feEndTime
                    : 0.0;
    rep.syncTrafficBytes = env.syncTraffic;

    for (size_t i = 0; i < stores.size(); ++i) {
        double gu = stores[i]->stations.gpu.utilization();
        double cu = stores[i]->stations.cpu.utilization();
        auto p = hw::serverPower(cfg.storeSpec, gu, cu);
        rep.perServer.push_back(
            {cfg.storeSpec.name + "#" + std::to_string(i), p});
        rep.power += p;
    }
    auto tuner_power = hw::serverPower(
        cfg.tunerSpec, env.tunerGpu.utilization(), 0.05);
    rep.perServer.push_back({cfg.tunerSpec.name, tuner_power});
    rep.power += tuner_power;
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

namespace {

/** Classifier training on the host, once feature extraction drains.
 * ndplint: allow(coroutine-ref-param) — referents live in
 * runSrvFineTuning's scope, which joins this task via s.run(). */
sim::Task
srvClassifierTrain(const sim::Simulator &s, HostStations &host,
                   sim::WaitGroup &fe_done, double seconds,
                   StageMetrics &stages, obs::Tracer *tr, int trk)
{
    co_await fe_done.wait();
    {
        obs::SpanGuard sg(tr, s, trk, obs::Cat::Tuner, "train");
        co_await host.gpus.compute(seconds);
    }
    stages.tunerS += seconds;
}

} // namespace

TrainReport
runSrvFineTuning(const ExperimentConfig &cfg, SrvVariant variant,
                 int tuner_epochs, bool pipelined)
{
    cfg.validate().orThrow();
    const models::ModelSpec &m = *cfg.model;
    TrainReport rep;
    rep.images = cfg.nImages;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    obs::GaugeSet gauges(tr);
    HostStations host(s, cfg.hostSpec);
    // Topology: the SRV storage servers and the host on one ToR; all
    // staged input funnels into the host's downlink.
    net::NetFabric fabric(s);
    std::vector<net::NodeId> srv_nodes;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        srv_nodes.push_back(fabric.addNode(cfg.srvStoreSpec.nic));
    const net::NodeId host_node = fabric.addNode(cfg.nic());
    fabric.setIngress(host_node);
    fabric.setTracer(tr);
    if (tr) {
        gauges.add("net", "ingress.util", [&fabric] {
            return fabric.downlinkUtilization(fabric.ingress());
        });
        gauges.add("host", "util.cpu",
                   [&host] { return host.cpu.utilization(); });
        gauges.add("host", "util.gpu",
                   [&host] { return host.gpus.utilization(); });
        gauges.add("host", "power.w",
                   [probe = hw::PowerProbe{&cfg.hostSpec, &host.gpus,
                                           &host.cpu}] {
                       return probe.watts();
                   });
    }
    // SRV has no peer to re-dispatch to (one host owns the GPUs), so
    // faults here degrade or type-fail the run but never re-assign.
    sim::FaultInjector injector(s, cfg.faults, cfg.srvStorageServers);
    fabric.attachFaults(injector.armed() ? &injector : nullptr);
    size_t cut = m.classifierStart();
    double fe_per_image = models::feSecondsPerImage(
        *cfg.hostSpec.gpu, m, cut, cfg.npe.batchSize);
    double ct_seconds =
        models::tunerEpochSecondsPerImage(*cfg.hostSpec.gpu, m,
                                          kTrainBatch) *
        static_cast<double>(cfg.nImages) *
        static_cast<double>(tuner_epochs);

    double wire = 0.0;
    bool decompress = false;
    switch (variant) {
      case SrvVariant::Preprocessed:
        wire = m.inputMB() * 1e6;
        break;
      case SrvVariant::Compressed:
        wire = m.inputMB() * 1e6 / kCompressionRatio;
        decompress = true;
        break;
      default:
        break; // host-local data
    }

    std::vector<std::unique_ptr<hw::Disk>> disks;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        disks.push_back(
            std::make_unique<hw::Disk>(s, cfg.srvStoreSpec.disk));

    sim::WaitGroup fe_done(s);

    PipelineSpec spec;
    spec.pipelined = pipelined;
    spec.batch = cfg.npe.batchSize;
    spec.depth = 2 * kStageDepth;
    spec.readBytesPerItem = wire;
    spec.fabric = &fabric;
    spec.wireDst = host_node;
    spec.wireClass = net::FlowClass::BulkInput;
    spec.wireBytesPerItem = wire;
    spec.cpu = &host.cpu;
    if (decompress && pipelined)
        spec.cpuOps = {
            CpuStageOp::decompress(m.inputMB(), kSrvCpuStageCores)};
    spec.gpu = &host.gpus;
    spec.computeSecondsPerItem = fe_per_image;
    spec.gpuWorkers = cfg.hostSpec.nGpus;
    spec.done = &fe_done;
    spec.faults = injector.armed() ? &injector : nullptr;
    spec.trace = tr;
    spec.traceNode = "host";

    std::vector<ProducerSpec> producers;
    if (wire > 0.0) {
        for (int i = 0; i < cfg.srvStorageServers; ++i) {
            ProducerSpec p;
            p.disk = disks[static_cast<size_t>(i)].get();
            p.node = srv_nodes[static_cast<size_t>(i)];
            p.runItems = {
                evenShare(cfg.nImages, cfg.srvStorageServers, i)};
            p.traceNode = "srv" + std::to_string(i);
            if (tr)
                gauges.add(p.traceNode, "util.disk",
                           [d = p.disk] { return d->utilization(); });
            producers.push_back(std::move(p));
        }
    } else {
        ProducerSpec p;
        p.runItems = {cfg.nImages};
        producers.push_back(std::move(p));
    }

    Pipeline pipe(s, std::move(spec), std::move(producers));
    pipe.spawn();
    s.spawn(srvClassifierTrain(s, host, fe_done, ct_seconds, rep.stages,
                               tr, tr ? tr->track("host", "tuner") : 0));
    s.run();

    rep.faults = injector.report();
    rep.net = fabric.report();
    pipe.finalize();
    rep.stages += pipe.metrics();
    rep.seconds = s.now();
    rep.trainIps = rep.seconds > 0.0
                       ? static_cast<double>(cfg.nImages) / rep.seconds
                       : 0.0;
    rep.feIps = rep.trainIps;
    rep.dataTrafficBytes = fabric.bytesInto(host_node);

    auto host_power = hw::serverPower(
        cfg.hostSpec, host.gpus.utilization(), host.cpu.utilization());
    rep.perServer.push_back({cfg.hostSpec.name, host_power});
    rep.power += host_power;
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        double cpu_util = disks[static_cast<size_t>(i)]->utilization() *
                          2.0 / cfg.srvStoreSpec.cpu.vcpus;
        auto p = hw::serverPower(cfg.srvStoreSpec, 0.0, cpu_util);
        rep.perServer.push_back(
            {cfg.srvStoreSpec.name + "#" + std::to_string(i), p});
        rep.power += p;
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)

} // namespace ndp::core
