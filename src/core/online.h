/**
 * @file
 * Online-inference path (§3.1, Fig. 7, steps 1-3).
 *
 * New uploads hit the inference server in real time: each photo is
 * decoded/preprocessed on a CPU core and classified on the server's
 * GPU, and its label is indexed. Unlike the throughput-oriented
 * offline path, what matters here is *latency* under a stochastic
 * arrival process — this simulator drives a Poisson upload stream
 * through the server and reports the latency distribution, which is
 * also where the NPE's +Offload optimization gets the preprocessed
 * binaries it stores next to the photos (§5.4).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/config.h"
#include "core/pipeline.h"
#include "hw/specs.h"
#include "net/fabric.h"
#include "sim/fault.h"

namespace ndp::core {

namespace sched {
class Scheduler;
}

struct OnlineConfig
{
    /** Mean Poisson upload rate, photos/s. */
    double arrivalsPerSec = 60.0;
    /** Uploads to simulate. */
    uint64_t nUploads = 20000;
    /** Inference-server instance. */
    hw::ServerSpec server = hw::p32xlarge();
    /** Classification model. */
    const models::ModelSpec *model = &models::resnet50();
    /** CPU cores available for preprocessing. */
    int preprocessCores = 8;
    uint64_t seed = 11;
    /**
     * Faults injected into the upload path (store 0 = the inference
     * server): stalls delay requests, message loss forces upload
     * retransmissions. Empty = the exact fault-free run.
     */
    sim::FaultPlan faults;
};

struct OnlineReport
{
    uint64_t uploads = 0;
    double seconds = 0.0;
    /** Served throughput, photos/s. */
    double throughput = 0.0;
    /** End-to-end latency percentiles, milliseconds. */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
    double gpuUtil = 0.0;
    double cpuUtil = 0.0;
    /** True if the server cannot sustain the offered load. */
    bool saturated = false;
    /** What the fault injector did to this run (empty plan = zeros). */
    sim::FaultReport faults;
    /** Fabric roll-up of the upload transfers (client -> server). */
    net::NetReport net;
};

/**
 * Borrowed resources one online-serving job runs against (see
 * FtDmpPorts in core/training.h for the borrowing contract). A
 * multi-job Cluster places serving on the Tuner host: gpu is the
 * *shared* Tuner GPU, cpu a per-job preprocessing pool.
 */
struct OnlinePorts
{
    net::NetFabric *fabric = nullptr;
    /** Aggregate client-side node (the upload front door). */
    net::NodeId clientNode = net::kNoNode;
    net::NodeId serverNode = net::kNoNode;
    hw::CpuPool *cpu = nullptr;
    hw::GpuExec *gpu = nullptr;
    sim::FaultInjector *faults = nullptr;
    obs::Tracer *trace = nullptr;
    /** Per-job trace prefix (obs::scopedNode); empty = untouched. */
    std::string scope;
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    sim::WaitGroup *jobDone = nullptr;
};

/** One Poisson upload-serving dataflow against borrowed devices. */
class OnlineDataflow
{
  public:
    OnlineDataflow(sim::Simulator &s, const OnlineConfig &cfg,
                   const OnlinePorts &ports);
    ~OnlineDataflow();

    OnlineDataflow(const OnlineDataflow &) = delete;
    OnlineDataflow &operator=(const OnlineDataflow &) = delete;

    void spawn();

    /** Latency distribution, utilizations, and the saturation verdict
     *  into @p rep (throughput is derived from makespan by callers). */
    void finalize(OnlineReport &rep);

    /** @name No-queue service times (batch 1)
     * @{ */
    double preprocS() const;
    double inferS() const;
    /** @} */

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Drive a Poisson upload stream through the inference server. */
OnlineReport runOnlineInference(const OnlineConfig &cfg);

/** Highest sustainable upload rate for the configuration, photos/s. */
double onlineCapacity(const OnlineConfig &cfg);

} // namespace ndp::core
