#include "core/inference.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <vector>

#include "hw/devices.h"
#include "models/throughput.h"
#include "sim/channel.h"
#include "sim/simulator.h"
#include "sim/wait_group.h"
#include "storage/codec.h"

namespace ndp::core {

namespace {

/** Host-side cores the paper dedicates to preprocess/decompress. */
constexpr int kSrvCpuStageCores = 8;
/** Label bytes returned per image by a PipeStore. */
constexpr double kLabelBytes = 16.0;
/** In-flight batches between pipeline stages. */
constexpr size_t kStageDepth = 4;

/** What a PipeStore reads per image and what the CPU must do to it. */
struct StoreWork
{
    double readBytes = 0.0;
    double uncompressedMB = 0.0;
    bool needDecompress = false;
    bool needPreprocess = false;
};

StoreWork
storeWork(const models::ModelSpec &m, const NpeOptions &npe)
{
    StoreWork w;
    if (!npe.offloadPreprocessing) {
        // Raw JPEGs: decode+resize on the store's CPU; JPEG payloads
        // do not deflate, so compression does not apply.
        w.readBytes = models::kRawImageMB * 1e6;
        w.needPreprocess = true;
    } else if (npe.compressedBinaries) {
        w.readBytes = m.inputMB() * 1e6 / kCompressionRatio;
        w.uncompressedMB = m.inputMB();
        w.needDecompress = true;
    } else {
        w.readBytes = m.inputMB() * 1e6;
    }
    return w;
}

double
decompressSeconds(double uncompressed_mb, int cores)
{
    return uncompressed_mb / (storage::kDecompressMBps *
                              static_cast<double>(cores));
}

double
preprocessSeconds(double images, int cores)
{
    return images /
           (kPreprocImgPerSecPerCore * static_cast<double>(cores));
}

struct StoreCtx
{
    StoreCtx(sim::Simulator &s, const hw::ServerSpec &spec)
        : disk(s, spec.disk), cpu(s, spec.cpu.vcpus),
          gpu(s, *spec.gpu, spec.nGpus), loaded(s, kStageDepth),
          ready(s, kStageDepth)
    {}

    hw::Disk disk;
    hw::CpuPool cpu;
    hw::GpuExec gpu;
    sim::Channel<int> loaded;
    sim::Channel<int> ready;
    uint64_t assigned = 0;
    uint64_t done = 0;
};

sim::Task
storeLoader(StoreCtx &st, StoreWork w, int batch)
{
    uint64_t left = st.assigned;
    while (left > 0) {
        int n = static_cast<int>(
            std::min<uint64_t>(static_cast<uint64_t>(batch), left));
        left -= static_cast<uint64_t>(n);
        co_await st.disk.read(w.readBytes * n);
        co_await st.loaded.put(n);
    }
    st.loaded.close();
}

sim::Task
storeCpuStage(StoreCtx &st, StoreWork w, NpeOptions npe)
{
    while (true) {
        auto n = co_await st.loaded.get();
        if (!n)
            break;
        if (w.needDecompress) {
            co_await st.cpu.run(
                npe.decompressCores,
                decompressSeconds(w.uncompressedMB * *n,
                                  npe.decompressCores));
        }
        if (w.needPreprocess) {
            co_await st.cpu.run(
                npe.preprocessCores,
                preprocessSeconds(static_cast<double>(*n),
                                  npe.preprocessCores));
        }
        co_await st.ready.put(*n);
    }
    st.ready.close();
}

sim::Task
storeGpuStage(StoreCtx &st, double sec_per_image, sim::WaitGroup &wg)
{
    while (true) {
        auto n = co_await st.ready.get();
        if (!n)
            break;
        co_await st.gpu.compute(sec_per_image * *n);
        st.done += static_cast<uint64_t>(*n);
    }
    wg.done();
}

/** Unpipelined store: every batch walks all stages back to back. */
sim::Task
storeSerial(StoreCtx &st, StoreWork w, NpeOptions npe,
            double sec_per_image, sim::WaitGroup &wg)
{
    uint64_t left = st.assigned;
    while (left > 0) {
        int n = static_cast<int>(std::min<uint64_t>(
            static_cast<uint64_t>(npe.batchSize), left));
        left -= static_cast<uint64_t>(n);
        co_await st.disk.read(w.readBytes * n);
        if (w.needDecompress) {
            co_await st.cpu.run(
                npe.decompressCores,
                decompressSeconds(w.uncompressedMB * n,
                                  npe.decompressCores));
        }
        if (w.needPreprocess) {
            co_await st.cpu.run(
                npe.preprocessCores,
                preprocessSeconds(static_cast<double>(n),
                                  npe.preprocessCores));
        }
        co_await st.gpu.compute(sec_per_image * n);
        st.done += static_cast<uint64_t>(n);
    }
    wg.done();
}

} // namespace

const char *
srvVariantName(SrvVariant v)
{
    switch (v) {
      case SrvVariant::RawRemote:
        return "Typical";
      case SrvVariant::RawLocal:
        return "Ideal(raw)";
      case SrvVariant::Ideal:
        return "SRV-I";
      case SrvVariant::Preprocessed:
        return "SRV-P";
      case SrvVariant::Compressed:
        return "SRV-C";
    }
    return "?";
}

InferenceReport
runNdpOfflineInference(const ExperimentConfig &cfg)
{
    const models::ModelSpec &m = *cfg.model;
    InferenceReport rep;
    rep.images = cfg.nImages;

    if (!models::fitsInMemory(*cfg.storeSpec.gpu, m,
                              cfg.npe.batchSize)) {
        rep.oom = true;
        return rep;
    }

    sim::Simulator s;
    sim::WaitGroup wg(s);
    StoreWork w = storeWork(m, cfg.npe);
    double sec_per_image =
        1.0 / models::deviceIps(*cfg.storeSpec.gpu, m,
                                cfg.npe.batchSize);

    std::vector<std::unique_ptr<StoreCtx>> stores;
    stores.reserve(cfg.nStores);
    uint64_t base = cfg.nImages / cfg.nStores;
    uint64_t rem = cfg.nImages % cfg.nStores;
    for (int i = 0; i < cfg.nStores; ++i) {
        auto st = std::make_unique<StoreCtx>(s, cfg.storeSpec);
        st->assigned = base + (static_cast<uint64_t>(i) < rem ? 1 : 0);
        stores.push_back(std::move(st));
    }

    wg.add(cfg.nStores);
    for (auto &st : stores) {
        if (cfg.npe.pipelined) {
            s.spawn(storeLoader(*st, w, cfg.npe.batchSize));
            s.spawn(storeCpuStage(*st, w, cfg.npe));
            s.spawn(storeGpuStage(*st, sec_per_image, wg));
        } else {
            s.spawn(storeSerial(*st, w, cfg.npe, sec_per_image, wg));
        }
    }
    s.run();

    rep.seconds = s.now();
    rep.ips = rep.seconds > 0.0
                  ? static_cast<double>(cfg.nImages) / rep.seconds
                  : 0.0;
    rep.netBytes = kLabelBytes * static_cast<double>(cfg.nImages);

    for (size_t i = 0; i < stores.size(); ++i) {
        double gu = stores[i]->gpu.utilization();
        double cu = stores[i]->cpu.utilization();
        rep.gpuUtil += gu / static_cast<double>(stores.size());
        rep.cpuUtil += cu / static_cast<double>(stores.size());
        auto p = hw::serverPower(cfg.storeSpec, gu, cu);
        rep.perServer.push_back(
            {cfg.storeSpec.name + "#" + std::to_string(i), p});
        rep.power += p;
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

namespace {

struct HostCtx
{
    HostCtx(sim::Simulator &s, const hw::ServerSpec &spec,
            const hw::NicSpec &nic)
        : gpus(s, *spec.gpu, spec.nGpus), cpu(s, spec.cpu.vcpus),
          ingress(s, nic), arrived(s, 2 * kStageDepth),
          ready(s, 2 * kStageDepth)
    {}

    hw::GpuExec gpus;
    hw::CpuPool cpu;
    hw::Link ingress;
    sim::Channel<int> arrived;
    sim::Channel<int> ready;
    uint64_t done = 0;
};

/** Per-image bytes a storage server ships for each SRV variant. */
double
srvWireBytes(const models::ModelSpec &m, SrvVariant v)
{
    switch (v) {
      case SrvVariant::RawRemote:
        return models::kRawImageMB * 1e6;
      case SrvVariant::Preprocessed:
        return m.inputMB() * 1e6;
      case SrvVariant::Compressed:
        return m.inputMB() * 1e6 / kCompressionRatio;
      default:
        return 0.0; // host-local variants
    }
}

sim::Task
srvFeeder(HostCtx &host, hw::Disk &disk, uint64_t images, int batch,
          double wire_bytes, sim::WaitGroup &feeders)
{
    uint64_t left = images;
    while (left > 0) {
        int n = static_cast<int>(
            std::min<uint64_t>(static_cast<uint64_t>(batch), left));
        left -= static_cast<uint64_t>(n);
        co_await disk.read(wire_bytes * n);
        co_await host.ingress.transfer(wire_bytes * n);
        co_await host.arrived.put(n);
    }
    feeders.done();
}

/** Host-local producer (Ideal / RawLocal): data already present. */
sim::Task
srvLocalProducer(HostCtx &host, uint64_t images, int batch,
                 sim::WaitGroup &feeders)
{
    uint64_t left = images;
    while (left > 0) {
        int n = static_cast<int>(
            std::min<uint64_t>(static_cast<uint64_t>(batch), left));
        left -= static_cast<uint64_t>(n);
        co_await host.arrived.put(n);
    }
    feeders.done();
}

sim::Task
srvCloser(HostCtx &host, sim::WaitGroup &feeders)
{
    co_await feeders.wait();
    host.arrived.close();
}

sim::Task
srvCpuStage(HostCtx &host, SrvVariant v, const models::ModelSpec &m)
{
    bool preprocess =
        v == SrvVariant::RawRemote || v == SrvVariant::RawLocal;
    bool decompress = v == SrvVariant::Compressed;
    while (true) {
        auto n = co_await host.arrived.get();
        if (!n)
            break;
        if (decompress) {
            co_await host.cpu.run(
                kSrvCpuStageCores,
                decompressSeconds(m.inputMB() * *n, kSrvCpuStageCores));
        }
        if (preprocess) {
            co_await host.cpu.run(
                kSrvCpuStageCores,
                preprocessSeconds(static_cast<double>(*n),
                                  kSrvCpuStageCores));
        }
        co_await host.ready.put(*n);
    }
    host.ready.close();
}

sim::Task
srvGpuWorker(HostCtx &host, double sec_per_image, sim::WaitGroup &wg)
{
    while (true) {
        auto n = co_await host.ready.get();
        if (!n)
            break;
        co_await host.gpus.compute(sec_per_image * *n);
        host.done += static_cast<uint64_t>(*n);
    }
    wg.done();
}

/** The §3.4 "Typical" system: no stage overlap at all. */
sim::Task
srvSerial(HostCtx &host, std::vector<std::unique_ptr<hw::Disk>> &disks,
          SrvVariant v, const models::ModelSpec &m, uint64_t images,
          int batch, double sec_per_image, sim::WaitGroup &wg)
{
    double wire = srvWireBytes(m, v);
    bool preprocess =
        v == SrvVariant::RawRemote || v == SrvVariant::RawLocal;
    bool decompress = v == SrvVariant::Compressed;
    uint64_t left = images;
    size_t turn = 0;
    while (left > 0) {
        int n = static_cast<int>(
            std::min<uint64_t>(static_cast<uint64_t>(batch), left));
        left -= static_cast<uint64_t>(n);
        if (wire > 0.0 && !disks.empty()) {
            co_await disks[turn % disks.size()]->read(wire * n);
            ++turn;
            co_await host.ingress.transfer(wire * n);
        }
        if (decompress) {
            co_await host.cpu.run(
                kSrvCpuStageCores,
                decompressSeconds(m.inputMB() * n, kSrvCpuStageCores));
        }
        if (preprocess) {
            co_await host.cpu.run(
                kSrvCpuStageCores,
                preprocessSeconds(static_cast<double>(n),
                                  kSrvCpuStageCores));
        }
        co_await host.gpus.compute(sec_per_image * n);
        host.done += static_cast<uint64_t>(n);
    }
    wg.done();
}

} // namespace

InferenceReport
runSrvOfflineInference(const ExperimentConfig &cfg, SrvVariant variant)
{
    const models::ModelSpec &m = *cfg.model;
    InferenceReport rep;
    rep.images = cfg.nImages;

    if (!models::fitsInMemory(*cfg.hostSpec.gpu, m, cfg.npe.batchSize)) {
        rep.oom = true;
        return rep;
    }

    sim::Simulator s;
    HostCtx host(s, cfg.hostSpec, cfg.nic());
    double sec_per_image =
        1.0 / models::deviceIps(*cfg.hostSpec.gpu, m, cfg.npe.batchSize);

    std::vector<std::unique_ptr<hw::Disk>> disks;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        disks.push_back(
            std::make_unique<hw::Disk>(s, cfg.srvStoreSpec.disk));

    sim::WaitGroup gpu_wg(s);
    sim::WaitGroup feeders(s);
    if (!cfg.npe.pipelined) {
        gpu_wg.add(1);
        s.spawn(srvSerial(host, disks, variant, m, cfg.nImages,
                          cfg.npe.batchSize, sec_per_image, gpu_wg));
    } else {
        double wire = srvWireBytes(m, variant);
        if (wire > 0.0) {
            feeders.add(cfg.srvStorageServers);
            uint64_t base = cfg.nImages / cfg.srvStorageServers;
            uint64_t rem = cfg.nImages % cfg.srvStorageServers;
            for (int i = 0; i < cfg.srvStorageServers; ++i) {
                uint64_t share =
                    base + (static_cast<uint64_t>(i) < rem ? 1 : 0);
                s.spawn(srvFeeder(host, *disks[i], share,
                                  cfg.npe.batchSize, wire, feeders));
            }
        } else {
            feeders.add(1);
            s.spawn(srvLocalProducer(host, cfg.nImages,
                                     cfg.npe.batchSize, feeders));
        }
        s.spawn(srvCloser(host, feeders));
        s.spawn(srvCpuStage(host, variant, m));
        gpu_wg.add(cfg.hostSpec.nGpus);
        for (int g = 0; g < cfg.hostSpec.nGpus; ++g)
            s.spawn(srvGpuWorker(host, sec_per_image, gpu_wg));
    }
    s.run();

    rep.seconds = s.now();
    rep.ips = rep.seconds > 0.0
                  ? static_cast<double>(cfg.nImages) / rep.seconds
                  : 0.0;
    rep.netBytes = host.ingress.bytesMoved();
    rep.gpuUtil = host.gpus.utilization();
    rep.cpuUtil = host.cpu.utilization();

    auto host_power =
        hw::serverPower(cfg.hostSpec, rep.gpuUtil, rep.cpuUtil);
    rep.perServer.push_back({cfg.hostSpec.name, host_power});
    rep.power += host_power;
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        // Storage servers spend a little CPU on read service.
        double cpu_util = disks[static_cast<size_t>(i)]->utilization() *
                          2.0 / cfg.srvStoreSpec.cpu.vcpus;
        auto p = hw::serverPower(cfg.srvStoreSpec, 0.0, cpu_util);
        rep.perServer.push_back(
            {cfg.srvStoreSpec.name + "#" + std::to_string(i), p});
        rep.power += p;
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

StageBreakdown
npeStageTimes(const ExperimentConfig &cfg, const NpeOptions &npe,
              bool fine_tuning)
{
    const models::ModelSpec &m = *cfg.model;
    const hw::ServerSpec &spec = cfg.storeSpec;
    StageBreakdown b;

    if (fine_tuning) {
        // Fine-tuning always consumes preprocessed binaries; the
        // +Offload step does not apply (§5.4, Fig. 12a).
        double read_bytes = npe.compressedBinaries
                                ? m.inputMB() * 1e6 / kCompressionRatio
                                : m.inputMB() * 1e6;
        b.readS = read_bytes / (spec.disk.readMBps * 1e6);
        if (npe.compressedBinaries) {
            b.decompressS =
                decompressSeconds(m.inputMB(), npe.decompressCores);
        }
        b.computeS = models::feSecondsPerImage(
            *spec.gpu, m, m.classifierStart(), npe.batchSize);
        return b;
    }

    StoreWork w = storeWork(m, npe);
    b.readS = w.readBytes / (spec.disk.readMBps * 1e6);
    if (w.needDecompress) {
        b.decompressS =
            decompressSeconds(w.uncompressedMB, npe.decompressCores);
    }
    if (w.needPreprocess)
        b.preprocessS = preprocessSeconds(1.0, npe.preprocessCores);
    b.computeS = 1.0 / models::deviceIps(*spec.gpu, m, npe.batchSize);
    return b;
}

} // namespace ndp::core
