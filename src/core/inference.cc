#include "core/inference.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "core/npe_common.h"
#include "core/pipeline.h"
#include "core/sched/scheduler.h"
#include "hw/devices.h"
#include "hw/power.h"
#include "models/throughput.h"
#include "obs/monitor.h"
#include "sim/simulator.h"

namespace ndp::core {

namespace {

/** What a PipeStore reads per image and what the CPU must do to it. */
struct StoreWork
{
    double readBytes = 0.0;
    double uncompressedMB = 0.0;
    bool needDecompress = false;
    bool needPreprocess = false;
};

StoreWork
storeWork(const models::ModelSpec &m, const NpeOptions &npe)
{
    StoreWork w;
    if (!npe.offloadPreprocessing) {
        // Raw JPEGs: decode+resize on the store's CPU; JPEG payloads
        // do not deflate, so compression does not apply.
        w.readBytes = models::kRawImageMB * 1e6;
        w.needPreprocess = true;
    } else if (npe.compressedBinaries) {
        w.readBytes = m.inputMB() * 1e6 / kCompressionRatio;
        w.uncompressedMB = m.inputMB();
        w.needDecompress = true;
    } else {
        w.readBytes = m.inputMB() * 1e6;
    }
    return w;
}

/** CPU-stage ops for one PipeStore under the given NPE options. */
std::vector<CpuStageOp>
storeCpuOps(const StoreWork &w, const NpeOptions &npe)
{
    std::vector<CpuStageOp> ops;
    if (w.needDecompress)
        ops.push_back(CpuStageOp::decompress(w.uncompressedMB,
                                             npe.decompressCores));
    if (w.needPreprocess)
        ops.push_back(CpuStageOp::preprocess(npe.preprocessCores));
    return ops;
}

/** Multi-job completion monitor for offline inference.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents
 * live in the dataflow's scope, which joins this task via s.run()
 * before they die) */
// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::Task
offlineJobMonitor(sim::WaitGroup &sink_wg, sim::WaitGroup &job_done)
{
    co_await sink_wg.wait();
    job_done.done();
}

} // namespace

const char *
srvVariantName(SrvVariant v)
{
    switch (v) {
      case SrvVariant::RawRemote:
        return "Typical";
      case SrvVariant::RawLocal:
        return "Ideal(raw)";
      case SrvVariant::Ideal:
        return "SRV-I";
      case SrvVariant::Preprocessed:
        return "SRV-P";
      case SrvVariant::Compressed:
        return "SRV-C";
    }
    return "?";
}

struct OfflineInferDataflow::Impl
{
    Impl(sim::Simulator &sim, const ExperimentConfig &config,
         const OfflineInferPorts &p)
        : s(sim), cfg(config), ports(p), gauges(p.trace), sinkWg(sim)
    {}

    sim::Simulator &s;
    ExperimentConfig cfg;
    OfflineInferPorts ports;
    obs::GaugeSet gauges;
    /** Drained-pipelines gate; awaited only by the job monitor. */
    sim::WaitGroup sinkWg;
    std::unique_ptr<sim::RecoveryCoordinator> recovery;
    std::vector<std::unique_ptr<Pipeline>> pipes;
};

OfflineInferDataflow::OfflineInferDataflow(sim::Simulator &s,
                                           const ExperimentConfig &cfg,
                                           const OfflineInferPorts &ports)
    : impl_(std::make_unique<Impl>(s, cfg, ports))
{
    assert(static_cast<int>(ports.stores.size()) == cfg.nStores);
    assert(ports.fleetIdx.size() == ports.stores.size());
    // The serial "Typical" walk has no per-store producers to report
    // exits, so re-dispatch recovery only arms in pipelined mode.
    if (ports.faults && cfg.npe.pipelined) {
        impl_->recovery = std::make_unique<sim::RecoveryCoordinator>(
            s, *ports.faults, cfg.nStores, cfg.npe.batchSize);
    }
}

OfflineInferDataflow::~OfflineInferDataflow() = default;

void
OfflineInferDataflow::spawn()
{
    Impl &im = *impl_;
    const ExperimentConfig &cfg = im.cfg;
    const models::ModelSpec &m = *cfg.model;
    obs::Tracer *tr = im.ports.trace;

    if (im.recovery)
        im.s.spawn(im.recovery->run());

    StoreWork w = storeWork(m, cfg.npe);
    double sec_per_image =
        1.0 / models::deviceIps(*cfg.storeSpec.gpu, m,
                                cfg.npe.batchSize);

    im.pipes.reserve(im.ports.stores.size());
    for (int i = 0; i < cfg.nStores; ++i) {
        StoreStations &st = *im.ports.stores[static_cast<size_t>(i)];
        const int fidx = im.ports.fleetIdx[static_cast<size_t>(i)];
        PipelineSpec spec;
        spec.pipelined = cfg.npe.pipelined;
        spec.batch = cfg.npe.batchSize;
        spec.readBytesPerItem = w.readBytes;
        spec.cpu = &st.cpu;
        spec.cpuOps = storeCpuOps(w, cfg.npe);
        spec.gpu = &st.gpu;
        spec.computeSecondsPerItem = sec_per_image;
        // Labels are the only bytes leaving the store; they ride the
        // fabric to the index server like any other transfer.
        spec.fabric = im.ports.fabric;
        spec.shipSrc = im.ports.storeNodes[static_cast<size_t>(i)];
        spec.shipDst = im.ports.indexNode;
        spec.shipClass = net::FlowClass::ResultShip;
        spec.shipBytesPerItem = kLabelBytes;
        // Only the job monitor (multi-job) needs the drain gate; a
        // single-tenant run just lets the event queue empty.
        spec.done = im.ports.jobDone ? &im.sinkWg : nullptr;
        spec.sched = im.ports.sched;
        spec.jobId = im.ports.jobId;
        spec.faults = im.ports.faults;
        spec.faultStoreBase = fidx;
        spec.recovery = im.recovery.get();
        spec.trace = tr;
        spec.traceNode = obs::scopedNode(
            im.ports.scope, "store" + std::to_string(fidx));
        if (tr) {
            hw::Disk *disk = &st.disk;
            hw::CpuPool *cpu = &st.cpu;
            hw::GpuExec *gpu = &st.gpu;
            im.gauges.add(spec.traceNode, "util.disk",
                          [disk] { return disk->utilization(); });
            im.gauges.add(spec.traceNode, "util.cpu",
                          [cpu] { return cpu->utilization(); });
            im.gauges.add(spec.traceNode, "util.gpu",
                          [gpu] { return gpu->utilization(); });
            im.gauges.add(spec.traceNode, "power.w",
                          [probe = hw::PowerProbe{&im.cfg.storeSpec,
                                                  gpu, cpu}] {
                              return probe.watts();
                          });
        }
        ProducerSpec prod;
        prod.disk = &st.disk;
        prod.node = im.ports.storeNodes[static_cast<size_t>(i)];
        prod.runItems = {evenShare(cfg.nImages, cfg.nStores, i)};
        im.pipes.push_back(std::make_unique<Pipeline>(
            im.s, std::move(spec), std::vector{prod}));
        im.pipes.back()->spawn();
    }
    if (im.ports.jobDone)
        im.s.spawn(offlineJobMonitor(im.sinkWg, *im.ports.jobDone));
}

void
OfflineInferDataflow::finalize(InferenceReport &rep)
{
    Impl &im = *impl_;
    for (size_t i = 0; i < im.pipes.size(); ++i) {
        im.pipes[i]->finalize();
        rep.stages += im.pipes[i]->metrics();
        double gu = im.ports.stores[i]->gpu.utilization();
        double cu = im.ports.stores[i]->cpu.utilization();
        rep.gpuUtil += gu / static_cast<double>(im.pipes.size());
        rep.cpuUtil += cu / static_cast<double>(im.pipes.size());
        auto p = hw::serverPower(im.cfg.storeSpec, gu, cu);
        rep.perServer.push_back(
            {im.cfg.storeSpec.name + "#" +
                 std::to_string(im.ports.fleetIdx[i]),
             p});
        rep.power += p;
    }
}

InferenceReport
runNdpOfflineInference(const ExperimentConfig &cfg)
{
    cfg.validate().orThrow();
    const models::ModelSpec &m = *cfg.model;
    InferenceReport rep;
    rep.images = cfg.nImages;

    if (auto mem = models::checkMemory(*cfg.storeSpec.gpu, m,
                                       cfg.npe.batchSize);
        !mem) {
        rep.oom = true;
        rep.oomNeededGiB = mem.neededGiB;
        rep.faults.terminal = sim::FaultClass::OutOfMemory;
        return rep;
    }

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    obs::GaugeSet gauges(tr);
    // Topology: stores plus the front-end index server the labels
    // return to, all on one ToR (§3.1 step 6).
    net::NetFabric fabric(s);
    OfflineInferPorts ports;
    ports.fabric = &fabric;
    for (int i = 0; i < cfg.nStores; ++i)
        ports.storeNodes.push_back(fabric.addNode(cfg.storeSpec.nic));
    ports.indexNode = fabric.addNode(cfg.nic());
    fabric.setIngress(ports.indexNode);
    fabric.setTracer(tr);
    if (tr) {
        gauges.add("net", "ingress.util", [&fabric] {
            return fabric.downlinkUtilization(fabric.ingress());
        });
        gauges.add("net", "flows.active", [&fabric] {
            return static_cast<double>(fabric.activeFlows());
        });
    }
    sim::FaultInjector injector(s, cfg.faults, cfg.nStores);
    injector.attachObserver(obs::HealthMonitor::current());
    ports.faults = injector.armed() ? &injector : nullptr;
    fabric.attachFaults(ports.faults);
    ports.trace = tr;

    std::vector<std::unique_ptr<StoreStations>> stations;
    stations.reserve(static_cast<size_t>(cfg.nStores));
    for (int i = 0; i < cfg.nStores; ++i) {
        stations.push_back(
            std::make_unique<StoreStations>(s, cfg.storeSpec));
        ports.stores.push_back(stations.back().get());
        ports.fleetIdx.push_back(i);
    }

    OfflineInferDataflow flow(s, cfg, ports);
    flow.spawn();
    s.run();

    rep.faults = injector.report();
    rep.net = fabric.report();
    rep.seconds = s.now();
    rep.ips = rep.seconds > 0.0
                  ? static_cast<double>(cfg.nImages) / rep.seconds
                  : 0.0;
    rep.netBytes = fabric.bytesInto(ports.indexNode);
    flow.finalize(rep);
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

namespace {

/** Per-image bytes a storage server ships for each SRV variant. */
double
srvWireBytes(const models::ModelSpec &m, SrvVariant v)
{
    switch (v) {
      case SrvVariant::RawRemote:
        return models::kRawImageMB * 1e6;
      case SrvVariant::Preprocessed:
        return m.inputMB() * 1e6;
      case SrvVariant::Compressed:
        return m.inputMB() * 1e6 / kCompressionRatio;
      default:
        return 0.0; // host-local variants
    }
}

/** CPU-stage ops on the SRV host (8 cores, §3.4). */
std::vector<CpuStageOp>
srvCpuOps(const models::ModelSpec &m, SrvVariant v)
{
    std::vector<CpuStageOp> ops;
    if (v == SrvVariant::Compressed)
        ops.push_back(
            CpuStageOp::decompress(m.inputMB(), kSrvCpuStageCores));
    if (v == SrvVariant::RawRemote || v == SrvVariant::RawLocal)
        ops.push_back(CpuStageOp::preprocess(kSrvCpuStageCores));
    return ops;
}

} // namespace

InferenceReport
runSrvOfflineInference(const ExperimentConfig &cfg, SrvVariant variant)
{
    cfg.validate().orThrow();
    const models::ModelSpec &m = *cfg.model;
    InferenceReport rep;
    rep.images = cfg.nImages;

    if (auto mem = models::checkMemory(*cfg.hostSpec.gpu, m,
                                       cfg.npe.batchSize);
        !mem) {
        rep.oom = true;
        rep.oomNeededGiB = mem.neededGiB;
        rep.faults.terminal = sim::FaultClass::OutOfMemory;
        return rep;
    }

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    obs::GaugeSet gauges(tr);
    HostStations host(s, cfg.hostSpec);
    // Topology: N storage servers funneling into the host's downlink.
    net::NetFabric fabric(s);
    std::vector<net::NodeId> srv_nodes;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        srv_nodes.push_back(fabric.addNode(cfg.srvStoreSpec.nic));
    const net::NodeId host_node = fabric.addNode(cfg.nic());
    fabric.setIngress(host_node);
    fabric.setTracer(tr);
    if (tr) {
        gauges.add("net", "ingress.util", [&fabric] {
            return fabric.downlinkUtilization(fabric.ingress());
        });
        gauges.add("net", "flows.active", [&fabric] {
            return static_cast<double>(fabric.activeFlows());
        });
        gauges.add("host", "util.cpu",
                   [&host] { return host.cpu.utilization(); });
        gauges.add("host", "util.gpu",
                   [&host] { return host.gpus.utilization(); });
        gauges.add("host", "power.w",
                   [probe = hw::PowerProbe{&cfg.hostSpec, &host.gpus,
                                           &host.cpu}] {
                       return probe.watts();
                   });
    }
    sim::FaultInjector injector(s, cfg.faults, cfg.srvStorageServers);
    injector.attachObserver(obs::HealthMonitor::current());
    fabric.attachFaults(injector.armed() ? &injector : nullptr);
    double sec_per_image =
        1.0 / models::deviceIps(*cfg.hostSpec.gpu, m, cfg.npe.batchSize);
    double wire = srvWireBytes(m, variant);

    std::vector<std::unique_ptr<hw::Disk>> disks;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        disks.push_back(
            std::make_unique<hw::Disk>(s, cfg.srvStoreSpec.disk));

    PipelineSpec spec;
    spec.pipelined = cfg.npe.pipelined;
    spec.batch = cfg.npe.batchSize;
    spec.depth = 2 * kStageDepth;
    spec.readBytesPerItem = wire;
    spec.fabric = &fabric;
    spec.wireDst = host_node;
    spec.wireClass = net::FlowClass::BulkInput;
    spec.wireBytesPerItem = wire;
    spec.cpu = &host.cpu;
    spec.cpuOps = srvCpuOps(m, variant);
    spec.gpu = &host.gpus;
    spec.computeSecondsPerItem = sec_per_image;
    spec.gpuWorkers = cfg.hostSpec.nGpus;
    spec.faults = injector.armed() ? &injector : nullptr;
    spec.trace = tr;
    spec.traceNode = "host";

    std::vector<ProducerSpec> producers;
    if (wire > 0.0) {
        for (int i = 0; i < cfg.srvStorageServers; ++i) {
            ProducerSpec p;
            p.disk = disks[static_cast<size_t>(i)].get();
            p.node = srv_nodes[static_cast<size_t>(i)];
            p.traceNode = "srv" + std::to_string(i);
            if (tr) {
                hw::Disk *disk = p.disk;
                gauges.add(p.traceNode, "util.disk",
                           [disk] { return disk->utilization(); });
            }
            p.runItems = {
                evenShare(cfg.nImages, cfg.srvStorageServers, i)};
            producers.push_back(std::move(p));
        }
    } else {
        // Host-local variants: data already present, no disks crossed.
        ProducerSpec p;
        p.runItems = {cfg.nImages};
        producers.push_back(std::move(p));
    }

    Pipeline pipe(s, std::move(spec), std::move(producers));
    pipe.spawn();
    s.run();

    rep.faults = injector.report();
    rep.net = fabric.report();
    pipe.finalize();
    rep.stages = pipe.metrics();
    rep.seconds = s.now();
    rep.ips = rep.seconds > 0.0
                  ? static_cast<double>(cfg.nImages) / rep.seconds
                  : 0.0;
    rep.netBytes = fabric.bytesInto(host_node);
    rep.gpuUtil = host.gpus.utilization();
    rep.cpuUtil = host.cpu.utilization();

    auto host_power =
        hw::serverPower(cfg.hostSpec, rep.gpuUtil, rep.cpuUtil);
    rep.perServer.push_back({cfg.hostSpec.name, host_power});
    rep.power += host_power;
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        // Storage servers spend a little CPU on read service.
        double cpu_util = disks[static_cast<size_t>(i)]->utilization() *
                          2.0 / cfg.srvStoreSpec.cpu.vcpus;
        auto p = hw::serverPower(cfg.srvStoreSpec, 0.0, cpu_util);
        rep.perServer.push_back(
            {cfg.srvStoreSpec.name + "#" + std::to_string(i), p});
        rep.power += p;
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

StageMetrics
npeStageTimes(const ExperimentConfig &cfg, const NpeOptions &npe,
              bool fine_tuning)
{
    const models::ModelSpec &m = *cfg.model;
    const hw::ServerSpec &spec = cfg.storeSpec;
    StageMetrics b;

    if (fine_tuning) {
        // Fine-tuning always consumes preprocessed binaries; the
        // +Offload step does not apply (§5.4, Fig. 12a).
        double read_bytes = npe.compressedBinaries
                                ? m.inputMB() * 1e6 / kCompressionRatio
                                : m.inputMB() * 1e6;
        // Steady-state stream rate: per-image seek is amortized away.
        b.readS = spec.disk.streamReadSeconds(read_bytes) -
                  spec.disk.seekS;
        if (npe.compressedBinaries) {
            b.decompressS =
                decompressSeconds(m.inputMB(), npe.decompressCores);
        }
        b.computeS = models::feSecondsPerImage(
            *spec.gpu, m, m.classifierStart(), npe.batchSize);
        return b;
    }

    StoreWork w = storeWork(m, npe);
    b.readS = spec.disk.streamReadSeconds(w.readBytes) -
              spec.disk.seekS;
    if (w.needDecompress) {
        b.decompressS =
            decompressSeconds(w.uncompressedMB, npe.decompressCores);
    }
    if (w.needPreprocess)
        b.preprocessS = preprocessSeconds(1.0, npe.preprocessCores);
    b.computeS = 1.0 / models::deviceIps(*spec.gpu, m, npe.batchSize);
    return b;
}

} // namespace ndp::core
