/**
 * @file
 * Check-N-Run-style model-delta distribution (§5, [29]).
 *
 * After fine-tuning, only the classifier weights differ from the copy
 * each PipeStore already holds, so the Tuner ships a compressed sparse
 * delta instead of the whole model. This is the functional encoder:
 * it diffs two flattened parameter vectors, stores (gap-encoded index,
 * value) pairs, and deflates the result. On ResNet50-sized models with
 * classifier-only changes this reaches the paper's "up to 427.4x"
 * traffic reduction.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "storage/codec.h"

namespace ndp::core {

struct ModelDelta
{
    storage::Bytes payload;
    size_t changedParams = 0;
    size_t totalParams = 0;

    /** Full-model bytes / delta bytes. */
    double
    reductionFactor() const
    {
        if (payload.empty())
            return 0.0;
        return static_cast<double>(totalParams) * 4.0 /
               static_cast<double>(payload.size());
    }
};

/**
 * Encode the difference updated - base. Values whose absolute change
 * is <= @p eps are treated as unchanged.
 */
ModelDelta encodeDelta(const std::vector<float> &base,
                       const std::vector<float> &updated,
                       float eps = 0.0f);

/**
 * Apply a delta in place. @return false if the payload is corrupt or
 * the parameter count does not match.
 */
bool applyDelta(const ModelDelta &delta, std::vector<float> &params);

/** Flatten every parameter tensor of @p model into one vector. */
std::vector<float> flattenParams(nn::Layer &model);

/**
 * Write @p values back into @p model's parameters.
 * @return false on size mismatch.
 */
bool loadParams(nn::Layer &model, const std::vector<float> &values);

} // namespace ndp::core
