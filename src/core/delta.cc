#include "core/delta.h"

#include <cmath>
#include <cstring>

namespace ndp::core {

namespace {

void
putVarint(storage::Bytes &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

bool
getVarint(const storage::Bytes &in, size_t &pos, uint64_t &v)
{
    v = 0;
    int shift = 0;
    while (pos < in.size()) {
        uint8_t b = in[pos++];
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return true;
        shift += 7;
        if (shift > 63)
            return false;
    }
    return false;
}

} // namespace

ModelDelta
encodeDelta(const std::vector<float> &base,
            const std::vector<float> &updated, float eps)
{
    ModelDelta d;
    d.totalParams = updated.size();

    storage::Bytes raw;
    putVarint(raw, updated.size());
    uint64_t last = 0;
    for (size_t i = 0; i < updated.size(); ++i) {
        float old_v = i < base.size() ? base[i] : 0.0f;
        if (std::fabs(updated[i] - old_v) <= eps)
            continue;
        putVarint(raw, static_cast<uint64_t>(i) - last);
        last = static_cast<uint64_t>(i);
        uint8_t b[4];
        std::memcpy(b, &updated[i], 4);
        raw.insert(raw.end(), b, b + 4);
        ++d.changedParams;
    }
    d.payload = storage::deflateLite(raw);
    return d;
}

bool
applyDelta(const ModelDelta &delta, std::vector<float> &params)
{
    auto raw = storage::inflateLite(delta.payload);
    if (!raw)
        return false;
    size_t pos = 0;
    uint64_t total = 0;
    if (!getVarint(*raw, pos, total))
        return false;
    if (total != params.size())
        return false;
    uint64_t idx = 0;
    bool first = true;
    while (pos < raw->size()) {
        uint64_t gap = 0;
        if (!getVarint(*raw, pos, gap))
            return false;
        idx = first ? gap : idx + gap;
        first = false;
        if (idx >= params.size() || pos + 4 > raw->size())
            return false;
        std::memcpy(&params[idx], raw->data() + pos, 4);
        pos += 4;
    }
    return true;
}

std::vector<float>
flattenParams(nn::Layer &model)
{
    std::vector<float> out;
    for (nn::Param *p : model.allParams()) {
        out.insert(out.end(), p->value.data().begin(),
                   p->value.data().end());
    }
    return out;
}

bool
loadParams(nn::Layer &model, const std::vector<float> &values)
{
    size_t pos = 0;
    for (nn::Param *p : model.allParams()) {
        if (pos + p->value.size() > values.size())
            return false;
        std::copy(values.begin() + pos,
                  values.begin() + pos + p->value.size(),
                  p->value.data().begin());
        pos += p->value.size();
    }
    return pos == values.size();
}

} // namespace ndp::core
