#include "core/service.h"

#include <cassert>
#include <cstring>

#include "core/delta.h"
#include "hw/specs.h"
#include "net/fabric.h"
#include "nn/loss.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace ndp::core {

namespace {

/** Replay one endpoint's queued copies over the fabric, in order.
 * Pointer parameters only: the byte lists live in the caller's scope,
 * which joins this task via s.run() before they die. */
sim::Task
replayTransfers(net::NetFabric *fab, net::NodeId src, net::NodeId dst,
                const std::vector<double> *bytes, net::FlowClass cls)
{
    for (double b : *bytes)
        co_await fab->transfer(src, dst, b, cls);
}

} // namespace

PhotoService::PhotoService(const Config &c)
    : cfg(c), rng(c.seed ^ 0xabcdef12345ull)
{
    world_ = std::make_unique<data::PhotoWorld>(cfg.profile.world);
    Rng model_rng(cfg.seed);
    model_ = std::make_unique<data::VisionModel>(
        cfg.profile.world.latentDim, cfg.profile.featureDim,
        cfg.profile.world.maxClasses, model_rng);
}

void
PhotoService::bootstrap()
{
    auto train = world_->poolDataset();
    auto test = world_->sampleTestSet(cfg.profile.testSetSize);
    model_->fullTrain(train, test, cfg.profile.fullTrainCfg);
    model_->version = 1;
    // Day-0 distribution: every PipeStore starts with a full copy of
    // the bootstrapped model (deltas chain from here).
    auto params = flattenParams(*model_);
    replicas_.assign(static_cast<size_t>(cfg.nPipeStores), {});
    for (auto &r : replicas_) {
        r.params = params;
        r.version = model_->version;
    }
    labelRange(0, world_->numImages());
    labeledUpTo = world_->numImages();
}

void
PhotoService::labelRange(size_t first_idx, size_t last_idx)
{
    const auto &pool = world_->pool();
    assert(last_idx <= pool.size());
    if (first_idx >= last_idx)
        return;

    size_t n = last_idx - first_idx;
    nn::Tensor x(n, world_->latentDim());
    for (size_t i = 0; i < n; ++i) {
        std::memcpy(x.rowPtr(i), world_->latentOf(pool[first_idx + i]),
                    world_->latentDim() * sizeof(float));
    }
    nn::Tensor logits = model_->forward(x);
    auto preds = nn::argmaxRows(logits);
    for (size_t i = 0; i < n; ++i) {
        labelDb.upsert(pool[first_idx + i].id, preds[i],
                       model_->version);
    }
}

void
PhotoService::advanceDay()
{
    world_->advanceDays(1);
    // Online inference labels the new uploads as they arrive (Fig. 7).
    labelRange(labeledUpTo, world_->numImages());
    labeledUpTo = world_->numImages();
}

void
PhotoService::advanceDays(int days)
{
    for (int d = 0; d < days; ++d)
        advanceDay();
}

nn::EvalResult
PhotoService::evaluateCurrentModel(size_t test_n)
{
    auto test = world_->sampleTestSet(test_n);
    return nn::evaluate(*model_, test);
}

PhotoService::FineTuneOutcome
PhotoService::fineTune()
{
    FineTuneOutcome out;
    out.top1Before = evaluateCurrentModel().top1;

    auto params_before = flattenParams(*model_);

    auto curated = world_->recencyBiasedDataset(
        world_->numImages(), cfg.profile.curatedRecentShare,
        cfg.profile.curatedWindowDays);
    auto test = world_->sampleTestSet(cfg.profile.testSetSize);
    auto feat_test = model_->extractFeatures(test);

    // Split the curated set into N_run sub-datasets, then shard each
    // run's feature extraction across the PipeStores — functionally
    // identical to FT-DMP's data parallelism because the weight-freeze
    // backbone needs no synchronization (§5.1).
    model_->freezeBackbone(true);
    auto runs = curated.shards(static_cast<size_t>(cfg.nRun));
    out.shardSizes.assign(static_cast<size_t>(cfg.nPipeStores), 0);

    // Crashed stores abandon their shards; survivors pick them up
    // round-robin. With no survivor at all the curated set is lost and
    // the model must stay at its current version — never train on an
    // empty feature set and pretend the tune happened.
    std::vector<bool> crashed(static_cast<size_t>(cfg.nPipeStores),
                              false);
    for (int c : cfg.crashedStores)
        if (c >= 0 && c < cfg.nPipeStores)
            crashed[static_cast<size_t>(c)] = true;
    std::vector<size_t> survivors;
    for (size_t s = 0; s < crashed.size(); ++s)
        if (!crashed[s])
            survivors.push_back(s);

    for (auto &run_ds : runs) {
        nn::Dataset run_features;
        auto shards = run_ds.shards(
            static_cast<size_t>(cfg.nPipeStores));
        size_t turn = 0;
        for (size_t s = 0; s < shards.size(); ++s) {
            size_t owner = s;
            if (s < crashed.size() && crashed[s]) {
                if (survivors.empty())
                    continue; // shard lost with the whole fleet
                owner = survivors[turn++ % survivors.size()];
                out.redispatchedImages += shards[s].size();
            }
            auto feats = model_->extractFeatures(shards[s]);
            out.shardSizes[owner] += feats.size();
            out.featureBytes += feats.size() *
                                feats.featureDim() * sizeof(float);
            run_features.append(feats);
        }
        if (run_features.size() == 0)
            continue;
        auto result = model_->fineTuneOnFeatures(
            run_features, feat_test, cfg.profile.fineTuneCfg);
        out.epochs += result.epochsRun;
    }
    model_->freezeBackbone(false);

    // FT-DMP feature-shipping time: every store that extracted a shard
    // ships it to the Tuner concurrently; the fabric's max-min sharing
    // makes the N stores contend for the Tuner's single ingress link.
    {
        sim::Simulator s;
        obs::Tracer *tr = obs::Tracer::current();
        net::NetFabric fabric(s);
        const hw::NicSpec store_nic = hw::g4dn4xlarge(true).nic;
        std::vector<net::NodeId> store_nodes;
        store_nodes.reserve(out.shardSizes.size());
        for (size_t i = 0; i < out.shardSizes.size(); ++i)
            store_nodes.push_back(fabric.addNode(store_nic));
        const net::NodeId tuner = fabric.addNode(hw::p32xlarge().nic);
        fabric.setIngress(tuner);
        fabric.setTracer(tr);
        std::vector<std::vector<double>> shipments(
            out.shardSizes.size());
        for (size_t i = 0; i < out.shardSizes.size(); ++i)
            if (out.shardSizes[i] > 0)
                shipments[i] = {static_cast<double>(
                    out.shardSizes[i] * cfg.profile.featureDim *
                    sizeof(float))};
        for (size_t i = 0; i < shipments.size(); ++i)
            if (!shipments[i].empty())
                s.spawn(replayTransfers(
                    &fabric, store_nodes[i], tuner, &shipments[i],
                    net::FlowClass::FeatureShip));
        s.run();
        s.reapFinished();
        out.featureShipSeconds = s.now();
        if (tr)
            tr->complete(tr->track("service", "photo"),
                         obs::Cat::Service, "feature-ship", 0.0,
                         s.now(),
                         {{"bytes", (double)out.featureBytes}});
    }

    out.baseVersion = model_->version;
    if (out.epochs > 0)
        model_->version += 1;
    out.newModelVersion = model_->version;

    auto params_after = flattenParams(*model_);
    ModelDelta delta = encodeDelta(params_before, params_after);
    out.deltaBytes = delta.payload.size();
    out.fullModelBytes = params_after.size() * sizeof(float);
    out.deltaReduction = delta.reductionFactor();
    out.delta = std::move(delta);

    auto ev = evaluateCurrentModel();
    out.top1After = ev.top1;
    out.top5After = ev.top5;
    return out;
}

PhotoService::DeltaDistOutcome
PhotoService::distributeDelta(const ModelDelta &delta, int base_version,
                              int new_version, double loss_probability)
{
    DeltaDistOutcome out;
    out.status.assign(replicas_.size(),
                      DeltaPushStatus::AlreadyCurrent);
    constexpr int kPushRetries = 5;
    // Every copy that crosses the wire, per replica: lost pushes cost
    // their bytes too, and a fallback ships the whole checkpoint.
    std::vector<std::vector<double>> wire(replicas_.size());
    const double delta_bytes =
        static_cast<double>(delta.payload.size());
    for (size_t i = 0; i < replicas_.size(); ++i) {
        PipeStoreReplica &rep = replicas_[i];
        DeltaPushStatus st = DeltaPushStatus::Corrupt;
        bool delivered = false;
        for (int attempt = 0; attempt <= kPushRetries; ++attempt) {
            wire[i].push_back(delta_bytes);
            if (loss_probability > 0.0 &&
                rng.chance(loss_probability)) {
                ++out.retransmissions;
                continue; // lost in flight
            }
            delivered = true;
            st = applyDeltaPush(rep, delta, base_version, new_version);
            break;
        }
        if (st == DeltaPushStatus::Applied)
            ++out.applied;
        if (!delivered || st == DeltaPushStatus::VersionMismatch ||
            st == DeltaPushStatus::Corrupt) {
            // Delta reconciliation failed (or the channel swallowed
            // every retry): ship the full current model. Costs the
            // whole checkpoint instead of the delta, but the push
            // must converge — a store never silently serves stale
            // weights.
            rep.params = flattenParams(*model_);
            rep.version = model_->version;
            ++out.fullFallbacks;
            st = DeltaPushStatus::AlreadyCurrent;
            wire[i].push_back(static_cast<double>(
                rep.params.size() * sizeof(float)));
        }
        out.status[i] = st;
    }

    // Check-N-Run push time: replay every copy over the fabric. Pushes
    // to different replicas go out concurrently and share the Tuner's
    // uplink under max-min fairness; retries to one replica serialize.
    {
        sim::Simulator s;
        obs::Tracer *tr = obs::Tracer::current();
        net::NetFabric fabric(s);
        const hw::NicSpec store_nic = hw::g4dn4xlarge(true).nic;
        std::vector<net::NodeId> store_nodes;
        store_nodes.reserve(replicas_.size());
        for (size_t i = 0; i < replicas_.size(); ++i)
            store_nodes.push_back(fabric.addNode(store_nic));
        const net::NodeId tuner = fabric.addNode(hw::p32xlarge().nic);
        fabric.setIngress(tuner);
        fabric.setTracer(tr);
        for (size_t i = 0; i < wire.size(); ++i)
            if (!wire[i].empty())
                s.spawn(replayTransfers(&fabric, tuner, store_nodes[i],
                                        &wire[i],
                                        net::FlowClass::DeltaPush));
        s.run();
        s.reapFinished();
        out.pushSeconds = s.now();
        if (tr)
            tr->complete(
                tr->track("service", "photo"), obs::Cat::Service,
                "delta-push", 0.0, s.now(),
                {{"applied", (double)out.applied},
                 {"retransmissions", (double)out.retransmissions},
                 {"fallbacks", (double)out.fullFallbacks}});
    }
    return out;
}

size_t
PhotoService::refreshLabels()
{
    const auto &pool = world_->pool();
    size_t changed = 0;
    constexpr size_t chunk = 2048;
    for (size_t start = 0; start < pool.size(); start += chunk) {
        size_t end = std::min(start + chunk, pool.size());
        size_t n = end - start;
        nn::Tensor x(n, world_->latentDim());
        for (size_t i = 0; i < n; ++i) {
            std::memcpy(x.rowPtr(i),
                        world_->latentOf(pool[start + i]),
                        world_->latentDim() * sizeof(float));
        }
        nn::Tensor logits = model_->forward(x);
        auto preds = nn::argmaxRows(logits);
        for (size_t i = 0; i < n; ++i) {
            auto old_entry = labelDb.lookup(pool[start + i].id);
            if (!old_entry || old_entry->label != preds[i])
                ++changed;
            labelDb.upsert(pool[start + i].id, preds[i],
                           model_->version);
        }
    }
    return changed;
}

std::vector<uint64_t>
PhotoService::search(int label) const
{
    return labelDb.search(label);
}

size_t
PhotoService::outdatedLabelCount() const
{
    return labelDb.countOutdated(model_->version);
}

sched::JobDesc
PhotoService::fineTuneJobDesc(const std::string &name,
                              int priority) const
{
    sched::JobDesc d;
    d.name = name;
    d.kind = sched::JobKind::FtDmpTrain;
    d.priority = priority;
    // Same workload fineTune() curates: the whole pool, recency-biased,
    // split into nRun pipelined runs.
    d.nImages = world_->numImages();
    d.train.nRun = cfg.nRun;
    return d;
}

sched::JobDesc
PhotoService::servingJobDesc(const std::string &name,
                             int priority) const
{
    sched::JobDesc d;
    d.name = name;
    d.kind = sched::JobKind::OpenLoopServe;
    d.priority = priority;
    // One session-capable user per stored photo owner, floored so
    // small functional worlds still exercise the session table.
    d.serve.arrivals.nUsers =
        std::max<uint64_t>(world_->numImages(), 10000);
    d.serve.arrivals.seed = cfg.seed;
    return d;
}

} // namespace ndp::core
