/**
 * @file
 * Constants and helpers shared by every NPE dataflow (offline
 * inference, FT-DMP feature extraction, SRV baselines, media
 * extensions). Before the pipeline-engine refactor these were
 * redefined per file and could drift; they live here exactly once.
 */

#pragma once

#include <cstdint>

#include "core/config.h"
#include "storage/codec.h"

namespace ndp::core {

/** In-flight batches between pipeline stages (§5.4). */
constexpr size_t kStageDepth = 4;
/** Host-side cores the paper dedicates to preprocess/decompress. */
constexpr int kSrvCpuStageCores = 8;
/** Label bytes returned per image by a PipeStore. */
constexpr double kLabelBytes = 16.0;
/**
 * Sparse-delta compression achieved on the trainable layers'
 * difference (Check-N-Run [29]); yields the paper's "up to 427.4x"
 * traffic reduction vs shipping the full ResNet50 model.
 */
constexpr double kDeltaCompressFactor = 34.0;

/** Seconds to decompress @p uncompressed_mb on @p cores cores. */
inline double
decompressSeconds(double uncompressed_mb, int cores)
{
    /* ndplint: allow(analytic-net-math: kDecompressMBps is a CPU codec
       rate, not a wire; local decompress sees no contention) */
    return uncompressed_mb /
           (storage::kDecompressMBps * static_cast<double>(cores));
}

/** Seconds to JPEG-decode+resize @p images on @p cores cores. */
inline double
preprocessSeconds(double images, int cores)
{
    return images /
           (kPreprocImgPerSecPerCore * static_cast<double>(cores));
}

/**
 * Largest-remainder split: items participant @p index (of @p parts)
 * receives out of @p total. Lower indices take the remainder, so
 * index 0 always holds the largest share.
 */
inline uint64_t
evenShare(uint64_t total, int parts, int index)
{
    uint64_t p = static_cast<uint64_t>(parts);
    return total / p + (static_cast<uint64_t>(index) < total % p ? 1 : 0);
}

/** Images store @p s processes in pipeline run @p r (§5.2). */
inline uint64_t
runShare(uint64_t total, int n_run, int n_stores, int r, int s)
{
    return evenShare(evenShare(total, n_run, r), n_stores, s);
}

} // namespace ndp::core
