#include "core/media.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "hw/devices.h"
#include "models/throughput.h"
#include "sim/channel.h"
#include "sim/wait_group.h"

namespace ndp::core {

MediaProfile
photoMedia()
{
    MediaProfile m;
    m.name = "photo";
    m.rawMB = models::kRawImageMB;
    m.unitsPerObject = 1.0;
    m.extractPerUnitS = 1.0 / kPreprocImgPerSecPerCore;
    m.tensorMBPerUnit = 0.602;
    m.resultBytesPerUnit = 16.0;
    m.model = &models::resnet50();
    return m;
}

MediaProfile
videoMedia()
{
    // A ~3-minute 1080p clip: 220 MB; smart frame selection ([39])
    // yields ~24 key frames, each decoded+resized like a photo but
    // with extra seek/decode cost inside the container.
    MediaProfile m;
    m.name = "video";
    m.rawMB = 220.0;
    m.unitsPerObject = 24.0;
    m.extractPerUnitS = 0.05;
    m.tensorMBPerUnit = 0.602;
    m.resultBytesPerUnit = 64.0; // per-frame label + timestamp
    m.model = &models::resnet50();
    return m;
}

MediaProfile
audioMedia()
{
    // A ~4-minute track: 9 MB; audio-spectrogram windows of ~10 s
    // give ~24 units; the AST transform is FFT-bound on the CPU.
    MediaProfile m;
    m.name = "audio";
    m.rawMB = 9.0;
    m.unitsPerObject = 24.0;
    m.extractPerUnitS = 0.03;
    m.tensorMBPerUnit = 0.25; // 128x512 spectrogram, fp32
    m.resultBytesPerUnit = 32.0;
    m.model = &models::shufflenetV2();
    return m;
}

MediaProfile
documentMedia()
{
    // A ~0.8 MB document tokenized into ~12 chunks of 512 tokens;
    // each chunk embeds through a transformer; the store ships the
    // 768-float embedding per chunk for Tuner-side downstream tasks.
    MediaProfile m;
    m.name = "document";
    m.rawMB = 0.8;
    m.unitsPerObject = 12.0;
    m.extractPerUnitS = 0.004; // tokenization
    m.tensorMBPerUnit = 0.001; // token ids
    m.resultBytesPerUnit = 768.0 * 2.0; // fp16 embedding
    m.model = &models::vitB16(); // transformer-shaped compute
    return m;
}

std::vector<MediaProfile>
allMedia()
{
    return {photoMedia(), videoMedia(), audioMedia(), documentMedia()};
}

namespace {

constexpr size_t kDepth = 4;

struct MediaStore
{
    MediaStore(sim::Simulator &s, const hw::ServerSpec &spec)
        : disk(s, spec.disk), cpu(s, spec.cpu.vcpus),
          gpu(s, *spec.gpu, spec.nGpus), loaded(s, kDepth),
          extracted(s, kDepth)
    {}

    hw::Disk disk;
    hw::CpuPool cpu;
    hw::GpuExec gpu;
    /** Tokens carry object counts. */
    sim::Channel<int> loaded;
    sim::Channel<int> extracted;
};

sim::Task
mediaLoader(MediaStore &st, const MediaProfile &media, uint64_t objects)
{
    uint64_t left = objects;
    while (left > 0) {
        int n = static_cast<int>(std::min<uint64_t>(4, left));
        left -= static_cast<uint64_t>(n);
        co_await st.disk.read(media.rawMB * 1e6 * n);
        co_await st.loaded.put(n);
    }
    st.loaded.close();
}

sim::Task
mediaExtract(MediaStore &st, const MediaProfile &media)
{
    while (true) {
        auto n = co_await st.loaded.get();
        if (!n)
            break;
        double t = media.unitsPerObject * *n * media.extractPerUnitS /
                   media.extractCores;
        co_await st.cpu.run(media.extractCores, t);
        co_await st.extracted.put(*n);
    }
    st.extracted.close();
}

sim::Task
mediaAnalyze(MediaStore &st, const MediaProfile &media,
             double unit_seconds, double *net_bytes,
             sim::WaitGroup &wg)
{
    while (true) {
        auto n = co_await st.extracted.get();
        if (!n)
            break;
        co_await st.gpu.compute(media.unitsPerObject * *n *
                                unit_seconds);
        *net_bytes +=
            media.unitsPerObject * *n * media.resultBytesPerUnit;
    }
    wg.done();
}

} // namespace

MediaReport
runNdpMediaAnalysis(const ExperimentConfig &cfg,
                    const MediaProfile &media, uint64_t n_objects)
{
    MediaReport rep;
    rep.objects = n_objects;

    sim::Simulator s;
    sim::WaitGroup wg(s);
    double unit_seconds =
        1.0 / models::deviceIps(*cfg.storeSpec.gpu, *media.model,
                                cfg.npe.batchSize);

    std::vector<std::unique_ptr<MediaStore>> stores;
    uint64_t base = n_objects / cfg.nStores;
    uint64_t rem = n_objects % cfg.nStores;
    wg.add(cfg.nStores);
    for (int i = 0; i < cfg.nStores; ++i) {
        stores.push_back(
            std::make_unique<MediaStore>(s, cfg.storeSpec));
        uint64_t share =
            base + (static_cast<uint64_t>(i) < rem ? 1 : 0);
        s.spawn(mediaLoader(*stores.back(), media, share));
        s.spawn(mediaExtract(*stores.back(), media));
        s.spawn(mediaAnalyze(*stores.back(), media, unit_seconds,
                             &rep.netBytes, wg));
    }
    s.run();

    rep.seconds = s.now();
    rep.ops = rep.seconds > 0.0 ? n_objects / rep.seconds : 0.0;
    rep.ups = rep.ops * media.unitsPerObject;
    for (auto &st : stores) {
        rep.power += hw::serverPower(cfg.storeSpec,
                                     st->gpu.utilization(),
                                     st->cpu.utilization());
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

MediaReport
runSrvMediaAnalysis(const ExperimentConfig &cfg,
                    const MediaProfile &media, uint64_t n_objects)
{
    MediaReport rep;
    rep.objects = n_objects;

    sim::Simulator s;
    hw::Link ingress(s, cfg.nic());
    hw::CpuPool host_cpu(s, cfg.hostSpec.cpu.vcpus);
    hw::GpuExec host_gpu(s, *cfg.hostSpec.gpu, cfg.hostSpec.nGpus);
    sim::Channel<int> arrived(s, 2 * kDepth);
    sim::Channel<int> ready(s, 2 * kDepth);
    sim::WaitGroup feeders(s), gpu_wg(s);

    double unit_seconds =
        1.0 / models::deviceIps(*cfg.hostSpec.gpu, *media.model,
                                cfg.npe.batchSize);

    struct Feeder
    {
        static sim::Task
        run(hw::Disk &disk, hw::Link &link, sim::Channel<int> &out,
            const MediaProfile &media, uint64_t objects,
            sim::WaitGroup &wg)
        {
            uint64_t left = objects;
            while (left > 0) {
                int n = static_cast<int>(std::min<uint64_t>(2, left));
                left -= static_cast<uint64_t>(n);
                co_await disk.read(media.rawMB * 1e6 * n);
                co_await link.transfer(media.rawMB * 1e6 * n);
                co_await out.put(n);
            }
            wg.done();
        }

        static sim::Task
        close(sim::WaitGroup &wg, sim::Channel<int> &ch)
        {
            co_await wg.wait();
            ch.close();
        }

        static sim::Task
        extract(sim::Channel<int> &in, sim::Channel<int> &out,
                hw::CpuPool &cpu, const MediaProfile &media)
        {
            constexpr int cores = 8;
            while (true) {
                auto n = co_await in.get();
                if (!n)
                    break;
                double t = media.unitsPerObject * *n *
                           media.extractPerUnitS / cores;
                co_await cpu.run(cores, t);
                co_await out.put(*n);
            }
            out.close();
        }

        static sim::Task
        analyze(sim::Channel<int> &in, hw::GpuExec &gpu,
                const MediaProfile &media, double unit_s,
                sim::WaitGroup &wg)
        {
            while (true) {
                auto n = co_await in.get();
                if (!n)
                    break;
                co_await gpu.compute(media.unitsPerObject * *n *
                                     unit_s);
            }
            wg.done();
        }
    };

    std::vector<std::unique_ptr<hw::Disk>> disks;
    feeders.add(cfg.srvStorageServers);
    uint64_t base = n_objects / cfg.srvStorageServers;
    uint64_t rem = n_objects % cfg.srvStorageServers;
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        disks.push_back(
            std::make_unique<hw::Disk>(s, cfg.srvStoreSpec.disk));
        uint64_t share =
            base + (static_cast<uint64_t>(i) < rem ? 1 : 0);
        s.spawn(Feeder::run(*disks.back(), ingress, arrived, media,
                            share, feeders));
    }
    s.spawn(Feeder::close(feeders, arrived));
    s.spawn(Feeder::extract(arrived, ready, host_cpu, media));
    gpu_wg.add(cfg.hostSpec.nGpus);
    for (int g = 0; g < cfg.hostSpec.nGpus; ++g)
        s.spawn(Feeder::analyze(ready, host_gpu, media, unit_seconds,
                                gpu_wg));
    s.run();

    rep.seconds = s.now();
    rep.ops = rep.seconds > 0.0 ? n_objects / rep.seconds : 0.0;
    rep.ups = rep.ops * media.unitsPerObject;
    rep.netBytes = ingress.bytesMoved();
    rep.power += hw::serverPower(cfg.hostSpec, host_gpu.utilization(),
                                 host_cpu.utilization());
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        rep.power += hw::serverPower(
            cfg.srvStoreSpec, 0.0,
            disks[static_cast<size_t>(i)]->utilization() * 2.0 /
                cfg.srvStoreSpec.cpu.vcpus);
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

} // namespace ndp::core
