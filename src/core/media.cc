#include "core/media.h"

#include <memory>
#include <string>
#include <vector>

#include "core/npe_common.h"
#include "core/pipeline.h"
#include "hw/devices.h"
#include "models/throughput.h"
#include "obs/trace.h"

namespace ndp::core {

MediaProfile
photoMedia()
{
    MediaProfile m;
    m.name = "photo";
    m.rawMB = models::kRawImageMB;
    m.unitsPerObject = 1.0;
    m.extractPerUnitS = 1.0 / kPreprocImgPerSecPerCore;
    m.tensorMBPerUnit = 0.602;
    m.resultBytesPerUnit = 16.0;
    m.model = &models::resnet50();
    return m;
}

MediaProfile
videoMedia()
{
    // A ~3-minute 1080p clip: 220 MB; smart frame selection ([39])
    // yields ~24 key frames, each decoded+resized like a photo but
    // with extra seek/decode cost inside the container.
    MediaProfile m;
    m.name = "video";
    m.rawMB = 220.0;
    m.unitsPerObject = 24.0;
    m.extractPerUnitS = 0.05;
    m.tensorMBPerUnit = 0.602;
    m.resultBytesPerUnit = 64.0; // per-frame label + timestamp
    m.model = &models::resnet50();
    return m;
}

MediaProfile
audioMedia()
{
    // A ~4-minute track: 9 MB; audio-spectrogram windows of ~10 s
    // give ~24 units; the AST transform is FFT-bound on the CPU.
    MediaProfile m;
    m.name = "audio";
    m.rawMB = 9.0;
    m.unitsPerObject = 24.0;
    m.extractPerUnitS = 0.03;
    m.tensorMBPerUnit = 0.25; // 128x512 spectrogram, fp32
    m.resultBytesPerUnit = 32.0;
    m.model = &models::shufflenetV2();
    return m;
}

MediaProfile
documentMedia()
{
    // A ~0.8 MB document tokenized into ~12 chunks of 512 tokens;
    // each chunk embeds through a transformer; the store ships the
    // 768-float embedding per chunk for Tuner-side downstream tasks.
    MediaProfile m;
    m.name = "document";
    m.rawMB = 0.8;
    m.unitsPerObject = 12.0;
    m.extractPerUnitS = 0.004; // tokenization
    m.tensorMBPerUnit = 0.001; // token ids
    m.resultBytesPerUnit = 768.0 * 2.0; // fp16 embedding
    m.model = &models::vitB16(); // transformer-shaped compute
    return m;
}

std::vector<MediaProfile>
allMedia()
{
    return {photoMedia(), videoMedia(), audioMedia(), documentMedia()};
}

namespace {

/** Objects per batch token near the data (small: objects are heavy). */
constexpr int kNdpMediaBatch = 4;
/** Objects per batch token on the SRV wire (whole raw objects). */
constexpr int kSrvMediaBatch = 2;

} // namespace

MediaReport
runNdpMediaAnalysis(const ExperimentConfig &cfg,
                    const MediaProfile &media, uint64_t n_objects)
{
    cfg.validate().orThrow();
    MediaReport rep;
    rep.objects = n_objects;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    // Topology: stores ship per-unit results to the Tuner-side sink.
    net::NetFabric fabric(s);
    std::vector<net::NodeId> store_nodes;
    for (int i = 0; i < cfg.nStores; ++i)
        store_nodes.push_back(fabric.addNode(cfg.storeSpec.nic));
    const net::NodeId sink_node = fabric.addNode(cfg.nic());
    fabric.setIngress(sink_node);
    fabric.setTracer(tr);
    double unit_seconds =
        1.0 / models::deviceIps(*cfg.storeSpec.gpu, *media.model,
                                cfg.npe.batchSize);

    struct Store
    {
        Store(sim::Simulator &s, const hw::ServerSpec &spec)
            : stations(s, spec)
        {}
        StoreStations stations;
        std::unique_ptr<Pipeline> pipe;
    };

    std::vector<std::unique_ptr<Store>> stores;
    for (int i = 0; i < cfg.nStores; ++i) {
        auto st = std::make_unique<Store>(s, cfg.storeSpec);
        PipelineSpec spec;
        spec.batch = kNdpMediaBatch;
        spec.readBytesPerItem = media.rawMB * 1e6;
        spec.cpu = &st->stations.cpu;
        spec.cpuOps = {CpuStageOp::extract(
            media.unitsPerObject * media.extractPerUnitS,
            media.extractCores)};
        spec.gpu = &st->stations.gpu;
        spec.computeSecondsPerItem = media.unitsPerObject * unit_seconds;
        // Only per-unit labels/embeddings leave the store.
        spec.fabric = &fabric;
        spec.shipSrc = store_nodes[static_cast<size_t>(i)];
        spec.shipDst = sink_node;
        spec.shipClass = net::FlowClass::ResultShip;
        spec.shipBytesPerItem =
            media.unitsPerObject * media.resultBytesPerUnit;
        spec.trace = tr;
        spec.traceNode = "store" + std::to_string(i);
        ProducerSpec prod;
        prod.disk = &st->stations.disk;
        prod.node = store_nodes[static_cast<size_t>(i)];
        prod.runItems = {evenShare(n_objects, cfg.nStores, i)};
        st->pipe = std::make_unique<Pipeline>(s, std::move(spec),
                                              std::vector{prod});
        st->pipe->spawn();
        stores.push_back(std::move(st));
    }
    s.run();

    rep.seconds = s.now();
    rep.ops = rep.seconds > 0.0 ? n_objects / rep.seconds : 0.0;
    rep.ups = rep.ops * media.unitsPerObject;
    rep.netBytes = fabric.bytesInto(sink_node);
    for (auto &st : stores) {
        st->pipe->finalize();
        rep.power += hw::serverPower(cfg.storeSpec,
                                     st->stations.gpu.utilization(),
                                     st->stations.cpu.utilization());
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

MediaReport
runSrvMediaAnalysis(const ExperimentConfig &cfg,
                    const MediaProfile &media, uint64_t n_objects)
{
    cfg.validate().orThrow();
    MediaReport rep;
    rep.objects = n_objects;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    HostStations host(s, cfg.hostSpec);
    // Topology: raw objects stream from every storage server into the
    // host's downlink — the bulk-input funnel that makes SRV media
    // analysis network-bound.
    net::NetFabric fabric(s);
    std::vector<net::NodeId> srv_nodes;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        srv_nodes.push_back(fabric.addNode(cfg.srvStoreSpec.nic));
    const net::NodeId host_node = fabric.addNode(cfg.nic());
    fabric.setIngress(host_node);
    fabric.setTracer(tr);
    double unit_seconds =
        1.0 / models::deviceIps(*cfg.hostSpec.gpu, *media.model,
                                cfg.npe.batchSize);

    std::vector<std::unique_ptr<hw::Disk>> disks;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        disks.push_back(
            std::make_unique<hw::Disk>(s, cfg.srvStoreSpec.disk));

    PipelineSpec spec;
    spec.batch = kSrvMediaBatch;
    spec.depth = 2 * kStageDepth;
    spec.readBytesPerItem = media.rawMB * 1e6;
    spec.fabric = &fabric;
    spec.wireDst = host_node;
    spec.wireClass = net::FlowClass::BulkInput;
    spec.wireBytesPerItem = media.rawMB * 1e6;
    spec.cpu = &host.cpu;
    spec.cpuOps = {CpuStageOp::extract(
        media.unitsPerObject * media.extractPerUnitS,
        kSrvCpuStageCores)};
    spec.gpu = &host.gpus;
    spec.computeSecondsPerItem = media.unitsPerObject * unit_seconds;
    spec.gpuWorkers = cfg.hostSpec.nGpus;
    spec.trace = tr;
    spec.traceNode = "host";

    std::vector<ProducerSpec> producers;
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        ProducerSpec p;
        p.disk = disks[static_cast<size_t>(i)].get();
        p.node = srv_nodes[static_cast<size_t>(i)];
        p.runItems = {evenShare(n_objects, cfg.srvStorageServers, i)};
        p.traceNode = "srv" + std::to_string(i);
        producers.push_back(std::move(p));
    }

    Pipeline pipe(s, std::move(spec), std::move(producers));
    pipe.spawn();
    s.run();

    rep.seconds = s.now();
    rep.ops = rep.seconds > 0.0 ? n_objects / rep.seconds : 0.0;
    rep.ups = rep.ops * media.unitsPerObject;
    rep.netBytes = fabric.bytesInto(host_node);
    rep.power += hw::serverPower(cfg.hostSpec, host.gpus.utilization(),
                                 host.cpu.utilization());
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        rep.power += hw::serverPower(
            cfg.srvStoreSpec, 0.0,
            disks[static_cast<size_t>(i)]->utilization() * 2.0 /
                cfg.srvStoreSpec.cpu.vcpus);
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

} // namespace ndp::core
