#include "core/media.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "core/npe_common.h"
#include "core/pipeline.h"
#include "core/sched/scheduler.h"
#include "hw/devices.h"
#include "hw/power.h"
#include "models/throughput.h"
#include "obs/trace.h"

namespace ndp::core {

MediaProfile
photoMedia()
{
    MediaProfile m;
    m.name = "photo";
    m.rawMB = models::kRawImageMB;
    m.unitsPerObject = 1.0;
    m.extractPerUnitS = 1.0 / kPreprocImgPerSecPerCore;
    m.tensorMBPerUnit = 0.602;
    m.resultBytesPerUnit = 16.0;
    m.model = &models::resnet50();
    return m;
}

MediaProfile
videoMedia()
{
    // A ~3-minute 1080p clip: 220 MB; smart frame selection ([39])
    // yields ~24 key frames, each decoded+resized like a photo but
    // with extra seek/decode cost inside the container.
    MediaProfile m;
    m.name = "video";
    m.rawMB = 220.0;
    m.unitsPerObject = 24.0;
    m.extractPerUnitS = 0.05;
    m.tensorMBPerUnit = 0.602;
    m.resultBytesPerUnit = 64.0; // per-frame label + timestamp
    m.model = &models::resnet50();
    return m;
}

MediaProfile
audioMedia()
{
    // A ~4-minute track: 9 MB; audio-spectrogram windows of ~10 s
    // give ~24 units; the AST transform is FFT-bound on the CPU.
    MediaProfile m;
    m.name = "audio";
    m.rawMB = 9.0;
    m.unitsPerObject = 24.0;
    m.extractPerUnitS = 0.03;
    m.tensorMBPerUnit = 0.25; // 128x512 spectrogram, fp32
    m.resultBytesPerUnit = 32.0;
    m.model = &models::shufflenetV2();
    return m;
}

MediaProfile
documentMedia()
{
    // A ~0.8 MB document tokenized into ~12 chunks of 512 tokens;
    // each chunk embeds through a transformer; the store ships the
    // 768-float embedding per chunk for Tuner-side downstream tasks.
    MediaProfile m;
    m.name = "document";
    m.rawMB = 0.8;
    m.unitsPerObject = 12.0;
    m.extractPerUnitS = 0.004; // tokenization
    m.tensorMBPerUnit = 0.001; // token ids
    m.resultBytesPerUnit = 768.0 * 2.0; // fp16 embedding
    m.model = &models::vitB16(); // transformer-shaped compute
    return m;
}

std::vector<MediaProfile>
allMedia()
{
    return {photoMedia(), videoMedia(), audioMedia(), documentMedia()};
}

namespace {

/** Objects per batch token near the data (small: objects are heavy). */
constexpr int kNdpMediaBatch = 4;
/** Objects per batch token on the SRV wire (whole raw objects). */
constexpr int kSrvMediaBatch = 2;

/** Multi-job completion monitor for media analysis.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents
 * live in the dataflow's scope, which joins this task via s.run()
 * before they die) */
// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::Task
mediaJobMonitor(sim::WaitGroup &sink_wg, sim::WaitGroup &job_done)
{
    co_await sink_wg.wait();
    job_done.done();
}

} // namespace

struct MediaDataflow::Impl
{
    Impl(sim::Simulator &sim, const ExperimentConfig &config,
         const MediaProfile &profile, uint64_t objects,
         const MediaPorts &p)
        : s(sim), cfg(config), media(profile), nObjects(objects),
          ports(p), sinkWg(sim)
    {}

    sim::Simulator &s;
    ExperimentConfig cfg;
    MediaProfile media;
    uint64_t nObjects;
    MediaPorts ports;
    sim::WaitGroup sinkWg;
    std::vector<std::unique_ptr<Pipeline>> pipes;
    StageMetrics stages;
};

MediaDataflow::MediaDataflow(sim::Simulator &s,
                             const ExperimentConfig &cfg,
                             const MediaProfile &media,
                             uint64_t n_objects, const MediaPorts &ports)
    : impl_(std::make_unique<Impl>(s, cfg, media, n_objects, ports))
{
    assert(static_cast<int>(ports.stores.size()) == cfg.nStores);
    assert(ports.fleetIdx.size() == ports.stores.size());
}

MediaDataflow::~MediaDataflow() = default;

void
MediaDataflow::spawn()
{
    Impl &im = *impl_;
    const ExperimentConfig &cfg = im.cfg;
    const MediaProfile &media = im.media;
    obs::Tracer *tr = im.ports.trace;
    double unit_seconds =
        1.0 / models::deviceIps(*cfg.storeSpec.gpu, *media.model,
                                cfg.npe.batchSize);

    im.pipes.reserve(im.ports.stores.size());
    for (int i = 0; i < cfg.nStores; ++i) {
        StoreStations &st = *im.ports.stores[static_cast<size_t>(i)];
        const int fidx = im.ports.fleetIdx[static_cast<size_t>(i)];
        PipelineSpec spec;
        spec.batch = kNdpMediaBatch;
        spec.readBytesPerItem = media.rawMB * 1e6;
        spec.cpu = &st.cpu;
        spec.cpuOps = {CpuStageOp::extract(
            media.unitsPerObject * media.extractPerUnitS,
            media.extractCores)};
        spec.gpu = &st.gpu;
        spec.computeSecondsPerItem = media.unitsPerObject * unit_seconds;
        // Only per-unit labels/embeddings leave the store.
        spec.fabric = im.ports.fabric;
        spec.shipSrc = im.ports.storeNodes[static_cast<size_t>(i)];
        spec.shipDst = im.ports.sinkNode;
        spec.shipClass = net::FlowClass::ResultShip;
        spec.shipBytesPerItem =
            media.unitsPerObject * media.resultBytesPerUnit;
        spec.done = im.ports.jobDone ? &im.sinkWg : nullptr;
        spec.sched = im.ports.sched;
        spec.jobId = im.ports.jobId;
        spec.trace = tr;
        spec.traceNode = obs::scopedNode(
            im.ports.scope, "store" + std::to_string(fidx));
        ProducerSpec prod;
        prod.disk = &st.disk;
        prod.node = im.ports.storeNodes[static_cast<size_t>(i)];
        prod.runItems = {evenShare(im.nObjects, cfg.nStores, i)};
        im.pipes.push_back(std::make_unique<Pipeline>(
            im.s, std::move(spec), std::vector{prod}));
        im.pipes.back()->spawn();
    }
    if (im.ports.jobDone)
        im.s.spawn(mediaJobMonitor(im.sinkWg, *im.ports.jobDone));
}

void
MediaDataflow::finalize(MediaReport &rep)
{
    Impl &im = *impl_;
    for (size_t i = 0; i < im.pipes.size(); ++i) {
        im.pipes[i]->finalize();
        im.stages += im.pipes[i]->metrics();
        rep.power += hw::serverPower(
            im.cfg.storeSpec, im.ports.stores[i]->gpu.utilization(),
            im.ports.stores[i]->cpu.utilization());
    }
}

const StageMetrics &
MediaDataflow::stages() const
{
    return impl_->stages;
}

MediaReport
runNdpMediaAnalysis(const ExperimentConfig &cfg,
                    const MediaProfile &media, uint64_t n_objects)
{
    cfg.validate().orThrow();
    MediaReport rep;
    rep.objects = n_objects;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    // Topology: stores ship per-unit results to the Tuner-side sink.
    net::NetFabric fabric(s);
    MediaPorts ports;
    ports.fabric = &fabric;
    for (int i = 0; i < cfg.nStores; ++i)
        ports.storeNodes.push_back(fabric.addNode(cfg.storeSpec.nic));
    ports.sinkNode = fabric.addNode(cfg.nic());
    fabric.setIngress(ports.sinkNode);
    fabric.setTracer(tr);
    ports.trace = tr;

    std::vector<std::unique_ptr<StoreStations>> stations;
    for (int i = 0; i < cfg.nStores; ++i) {
        stations.push_back(
            std::make_unique<StoreStations>(s, cfg.storeSpec));
        ports.stores.push_back(stations.back().get());
        ports.fleetIdx.push_back(i);
    }

    MediaDataflow flow(s, cfg, media, n_objects, ports);
    flow.spawn();
    s.run();

    rep.seconds = s.now();
    rep.ops = rep.seconds > 0.0 ? n_objects / rep.seconds : 0.0;
    rep.ups = rep.ops * media.unitsPerObject;
    rep.netBytes = fabric.bytesInto(ports.sinkNode);
    flow.finalize(rep);
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

MediaReport
runSrvMediaAnalysis(const ExperimentConfig &cfg,
                    const MediaProfile &media, uint64_t n_objects)
{
    cfg.validate().orThrow();
    MediaReport rep;
    rep.objects = n_objects;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    HostStations host(s, cfg.hostSpec);
    // Topology: raw objects stream from every storage server into the
    // host's downlink — the bulk-input funnel that makes SRV media
    // analysis network-bound.
    net::NetFabric fabric(s);
    std::vector<net::NodeId> srv_nodes;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        srv_nodes.push_back(fabric.addNode(cfg.srvStoreSpec.nic));
    const net::NodeId host_node = fabric.addNode(cfg.nic());
    fabric.setIngress(host_node);
    fabric.setTracer(tr);
    double unit_seconds =
        1.0 / models::deviceIps(*cfg.hostSpec.gpu, *media.model,
                                cfg.npe.batchSize);

    std::vector<std::unique_ptr<hw::Disk>> disks;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        disks.push_back(
            std::make_unique<hw::Disk>(s, cfg.srvStoreSpec.disk));

    PipelineSpec spec;
    spec.batch = kSrvMediaBatch;
    spec.depth = 2 * kStageDepth;
    spec.readBytesPerItem = media.rawMB * 1e6;
    spec.fabric = &fabric;
    spec.wireDst = host_node;
    spec.wireClass = net::FlowClass::BulkInput;
    spec.wireBytesPerItem = media.rawMB * 1e6;
    spec.cpu = &host.cpu;
    spec.cpuOps = {CpuStageOp::extract(
        media.unitsPerObject * media.extractPerUnitS,
        kSrvCpuStageCores)};
    spec.gpu = &host.gpus;
    spec.computeSecondsPerItem = media.unitsPerObject * unit_seconds;
    spec.gpuWorkers = cfg.hostSpec.nGpus;
    spec.trace = tr;
    spec.traceNode = "host";

    std::vector<ProducerSpec> producers;
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        ProducerSpec p;
        p.disk = disks[static_cast<size_t>(i)].get();
        p.node = srv_nodes[static_cast<size_t>(i)];
        p.runItems = {evenShare(n_objects, cfg.srvStorageServers, i)};
        p.traceNode = "srv" + std::to_string(i);
        producers.push_back(std::move(p));
    }

    Pipeline pipe(s, std::move(spec), std::move(producers));
    pipe.spawn();
    s.run();

    rep.seconds = s.now();
    rep.ops = rep.seconds > 0.0 ? n_objects / rep.seconds : 0.0;
    rep.ups = rep.ops * media.unitsPerObject;
    rep.netBytes = fabric.bytesInto(host_node);
    rep.power += hw::serverPower(cfg.hostSpec, host.gpus.utilization(),
                                 host.cpu.utilization());
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        rep.power += hw::serverPower(
            cfg.srvStoreSpec, 0.0,
            disks[static_cast<size_t>(i)]->utilization() * 2.0 /
                cfg.srvStoreSpec.cpu.vcpus);
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

} // namespace ndp::core
