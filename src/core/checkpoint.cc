#include "core/checkpoint.h"

#include <cstring>

#include "core/delta.h"
#include "storage/huffman.h"

namespace ndp::core {

namespace {

constexpr uint8_t kMagic[4] = {'N', 'D', 'C', 'K'};

void
putU32(storage::Bytes &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
getU32(const storage::Bytes &in, size_t pos)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(in[pos + i]) << (8 * i);
    return v;
}

} // namespace

uint32_t
fnv1a(const uint8_t *data, size_t n)
{
    uint32_t h = 2166136261u;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 16777619u;
    }
    return h;
}

Checkpoint
saveCheckpoint(nn::Layer &model, int version)
{
    std::vector<float> params = flattenParams(model);
    storage::Bytes raw(params.size() * sizeof(float));
    std::memcpy(raw.data(), params.data(), raw.size());

    Checkpoint ckpt;
    ckpt.version = version;
    ckpt.payload.insert(ckpt.payload.end(), kMagic, kMagic + 4);
    putU32(ckpt.payload, static_cast<uint32_t>(version));
    putU32(ckpt.payload, static_cast<uint32_t>(params.size()));
    putU32(ckpt.payload, fnv1a(raw.data(), raw.size()));
    storage::Bytes packed = storage::deflateFull(raw);
    ckpt.payload.insert(ckpt.payload.end(), packed.begin(),
                        packed.end());
    return ckpt;
}

std::optional<int>
checkpointVersion(const storage::Bytes &payload)
{
    if (payload.size() < 16 ||
        std::memcmp(payload.data(), kMagic, 4) != 0)
        return std::nullopt;
    return static_cast<int>(getU32(payload, 4));
}

std::optional<std::vector<float>>
restoreParams(const Checkpoint &ckpt)
{
    const storage::Bytes &p = ckpt.payload;
    if (p.size() < 16 || std::memcmp(p.data(), kMagic, 4) != 0)
        return std::nullopt;
    uint32_t count = getU32(p, 8);
    uint32_t checksum = getU32(p, 12);

    storage::Bytes packed(p.begin() + 16, p.end());
    auto raw = storage::inflateFull(packed);
    if (!raw || raw->size() != count * sizeof(float))
        return std::nullopt;
    if (fnv1a(raw->data(), raw->size()) != checksum)
        return std::nullopt;

    std::vector<float> params(count);
    std::memcpy(params.data(), raw->data(), raw->size());
    return params;
}

bool
restoreCheckpoint(const Checkpoint &ckpt, nn::Layer &model)
{
    auto params = restoreParams(ckpt);
    if (!params)
        return false;
    return loadParams(model, *params);
}

const char *
deltaPushStatusName(DeltaPushStatus s)
{
    switch (s) {
      case DeltaPushStatus::Applied:
        return "applied";
      case DeltaPushStatus::AlreadyCurrent:
        return "already-current";
      case DeltaPushStatus::VersionMismatch:
        return "version-mismatch";
      case DeltaPushStatus::Corrupt:
        return "corrupt";
    }
    return "?";
}

DeltaPushStatus
applyDeltaPush(PipeStoreReplica &replica, const ModelDelta &delta,
               int base_version, int new_version)
{
    if (replica.version >= new_version)
        return DeltaPushStatus::AlreadyCurrent;
    if (replica.version != base_version)
        return DeltaPushStatus::VersionMismatch;
    // Apply to a copy first: a corrupt payload must not leave the
    // replica half-updated at the old version.
    std::vector<float> updated = replica.params;
    if (!applyDelta(delta, updated))
        return DeltaPushStatus::Corrupt;
    replica.params = std::move(updated);
    replica.version = new_version;
    return DeltaPushStatus::Applied;
}

} // namespace ndp::core
