/**
 * @file
 * Cluster/experiment configuration shared by the inference and training
 * simulators, plus the workload constants the paper's evaluation fixes.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "hw/specs.h"
#include "models/model.h"
#include "models/zoo.h"
#include "sim/fault.h"

namespace ndp::core {

/**
 * Result of validating a configuration. Marked [[nodiscard]] because
 * discarding it silently skips the check the call was supposed to
 * perform — the type-system counterpart of ndp-lint's discarded-task
 * rule. Entry points chain `.orThrow()` to keep the old throwing
 * behaviour.
 */
class [[nodiscard]] ValidationResult
{
  public:
    /** A valid configuration. */
    ValidationResult() = default;

    /** Invalid: @p message names the offending field. */
    explicit ValidationResult(std::string message)
        : error_(std::move(message))
    {}

    /** True when the configuration is usable. */
    explicit operator bool() const { return error_.empty(); }

    [[nodiscard]] bool ok() const { return error_.empty(); }

    [[nodiscard]] const std::string &error() const { return error_; }

    /** Entry-point gate: throws std::invalid_argument when invalid. */
    void
    orThrow() const
    {
        if (!error_.empty())
            throw std::invalid_argument(error_);
    }

  private:
    std::string error_;
};

/** @name Workload constants (§3.4, §5.4, §6.1)
 * @{
 */
/** JPEG decode + resize rate, images/s per CPU core (2.7 MB JPEGs). */
constexpr double kPreprocImgPerSecPerCore = 15.4;
/** Deflate ratio of preprocessed fp32 binaries (codec.h measures it). */
constexpr double kCompressionRatio = 3.5;
/** Classifier-training epochs the Tuner runs over received features. */
constexpr int kDefaultTunerEpochs = 4;
/** Inference / feature-extraction batch (§6.1). */
constexpr int kInferBatch = 128;
/** Training batch (§6.1). */
constexpr int kTrainBatch = 512;
/** Check-N-Run model-delta traffic reduction upper bound (§5). */
constexpr double kCheckNRunMaxReduction = 427.4;
/** @} */

/** NPE optimization levels of §5.4 (cumulative in Fig. 12). */
struct NpeOptions
{
    /** 3-stage load/CPU/GPU pipelining (vs fully serial batches). */
    bool pipelined = true;
    /** Preprocessing offloaded to the online-inference server: the
     *  store keeps preprocessed binaries and never decodes JPEGs. */
    bool offloadPreprocessing = true;
    /** Preprocessed binaries stored deflate-compressed. */
    bool compressedBinaries = true;
    int batchSize = kInferBatch;
    /** CPU cores a store dedicates to decompression (§5.4: max two). */
    int decompressCores = 2;
    /** CPU cores a store may spend on preprocessing (§4.2: one). */
    int preprocessCores = 1;

    /** Fig. 12's four cumulative configurations. */
    static NpeOptions naive();
    static NpeOptions withOffload();
    static NpeOptions withCompression();
    static NpeOptions withBatch();
};

inline NpeOptions
NpeOptions::naive()
{
    NpeOptions o;
    o.pipelined = true;
    o.offloadPreprocessing = false;
    o.compressedBinaries = false;
    o.batchSize = 16;
    o.preprocessCores = 1;
    return o;
}

inline NpeOptions
NpeOptions::withOffload()
{
    NpeOptions o = naive();
    o.offloadPreprocessing = true;
    return o;
}

inline NpeOptions
NpeOptions::withCompression()
{
    NpeOptions o = withOffload();
    o.compressedBinaries = true;
    return o;
}

inline NpeOptions
NpeOptions::withBatch()
{
    NpeOptions o = withCompression();
    o.batchSize = kInferBatch;
    return o;
}

/**
 * One remote WAN region serving replicas live in (core/georep). The
 * home region fine-tunes; each WanSite receives versioned model
 * deltas across a high-latency, low-bandwidth WAN link.
 */
struct WanSite
{
    std::string name;
    /** WAN link capacity to the home region, Gbps each way. */
    double gbps = 1.0;
    /** One-way WAN propagation latency, seconds (tens of ms). */
    double latencyS = 0.05;
};

/** One experiment's cluster and workload. */
struct ExperimentConfig
{
    const models::ModelSpec *model = &models::resnet50();
    /** PipeStores participating (1-20 in the paper). */
    int nStores = 4;
    /** Tuner/host ingress bandwidth, Gbps (§6.4 sweeps 1-40). */
    double networkGbps = 10.0;
    /** PipeStore instance (g4dn.4xlarge or inf1.2xlarge). */
    hw::ServerSpec storeSpec = hw::g4dn4xlarge(true);
    /** Tuner instance. */
    hw::ServerSpec tunerSpec = hw::p32xlarge();
    /** SRV host instance (two V100s used). */
    hw::ServerSpec hostSpec = hw::p38xlarge(2);
    /** Storage servers behind the SRV host (GPUs disabled). */
    int srvStorageServers = 4;
    hw::ServerSpec srvStoreSpec = hw::g4dn4xlarge(false);
    /** Images processed by the experiment. */
    uint64_t nImages = 200000;
    NpeOptions npe;
    /**
     * Seeded fault schedule injected into the run (empty = none; the
     * hooks are zero-cost no-ops and every figure stays bitwise
     * identical to a fault-free build).
     */
    sim::FaultPlan faults;

    hw::NicSpec
    nic() const
    {
        return hw::NicSpec{networkGbps, 2.0e-5};
    }

    /**
     * Reject configurations the simulators would divide or fan out by.
     * Every run* entry point calls `validate().orThrow()` before
     * building a pipeline; the result is [[nodiscard]] so a bare
     * validate() call cannot silently skip the check.
     */
    ValidationResult
    validate() const
    {
        if (model == nullptr)
            return ValidationResult("ExperimentConfig: model is null");
        if (nStores < 1)
            return ValidationResult(
                "ExperimentConfig: nStores must be >= 1");
        if (srvStorageServers < 1)
            return ValidationResult(
                "ExperimentConfig: srvStorageServers must be >= 1");
        if (networkGbps <= 0.0)
            return ValidationResult(
                "ExperimentConfig: networkGbps must be > 0");
        if (npe.batchSize < 1)
            return ValidationResult(
                "ExperimentConfig: npe.batchSize must be >= 1");
        if (npe.decompressCores < 1)
            return ValidationResult(
                "ExperimentConfig: npe.decompressCores must be >= 1");
        if (npe.preprocessCores < 1)
            return ValidationResult(
                "ExperimentConfig: npe.preprocessCores must be >= 1");
        if (std::string err = faults.validate(); !err.empty())
            return ValidationResult(std::move(err));
        return {};
    }
};

/**
 * The shared fleet a multi-job Cluster owns: PipeStores, one Tuner
 * host, and the fabric between them (see core/sched/cluster.h). Jobs
 * partition the stores; the Tuner GPU and the network are shared.
 */
struct ClusterSpec
{
    /** PipeStores in the fleet. */
    int nStores = 8;
    /** Tuner ingress bandwidth, Gbps. */
    double networkGbps = 10.0;
    hw::ServerSpec storeSpec = hw::g4dn4xlarge(true);
    hw::ServerSpec tunerSpec = hw::p32xlarge();
    /**
     * Fair-share quantum of the cluster scheduler: how far (in GPU
     * service seconds, share-weighted) a job may run ahead of a
     * competitor before its stage coroutines park at the next batch
     * boundary (core/sched/scheduler.h).
     */
    double quantumS = 5.0;
    /**
     * When false the Cluster runs with no scheduler at all — jobs
     * free-run against device queues (useful as a contention
     * baseline, and the zero-cost path of the preemption hooks).
     */
    bool scheduling = true;
    /** Fault schedule; armed only for jobs owning the full fleet. */
    sim::FaultPlan faults;

    /**
     * Remote WAN regions (empty = single-region fleet on the exact
     * pre-topology hub fabric). Declaring sites moves the fleet into
     * rack 0 of a home site and adds one replica node per WanSite
     * behind its WAN link; GeoReplicate jobs require at least one.
     */
    std::vector<WanSite> wanSites;

    hw::NicSpec
    nic() const
    {
        return hw::NicSpec{networkGbps, 2.0e-5};
    }

    ValidationResult
    validate() const
    {
        if (nStores < 1)
            return ValidationResult(
                "ClusterSpec: nStores must be >= 1");
        if (networkGbps <= 0.0)
            return ValidationResult(
                "ClusterSpec: networkGbps must be > 0");
        if (quantumS <= 0.0)
            return ValidationResult(
                "ClusterSpec: quantumS must be > 0");
        for (const WanSite &w : wanSites) {
            if (w.name.empty())
                return ValidationResult(
                    "ClusterSpec: WAN site name must be non-empty");
            if (w.gbps <= 0.0)
                return ValidationResult(
                    "ClusterSpec: WAN site gbps must be > 0");
            if (w.latencyS < 0.0)
                return ValidationResult(
                    "ClusterSpec: WAN site latency must be >= 0");
        }
        if (std::string err = faults.validate(); !err.empty())
            return ValidationResult(std::move(err));
        return {};
    }
};

} // namespace ndp::core
