#include "core/georep/georep.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sched/scheduler.h"
#include "net/topology.h"
#include "sim/channel.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/task.h"

namespace ndp::core::georep {

ValidationResult
GeoRepOptions::validate() const
{
    if (nRounds < 1)
        return ValidationResult("GeoRepOptions: nRounds must be >= 1");
    if (roundIntervalS < 0.0 || fineTuneS < 0.0)
        return ValidationResult(
            "GeoRepOptions: round/fine-tune seconds must be >= 0");
    if (deltaBytes <= 0.0 || fullBytes <= 0.0)
        return ValidationResult(
            "GeoRepOptions: delta/full payload bytes must be > 0");
    if (deltaBytes > fullBytes)
        return ValidationResult(
            "GeoRepOptions: a delta larger than the checkpoint never "
            "pays for itself");
    if (stalenessBound < 1)
        return ValidationResult(
            "GeoRepOptions: stalenessBound must be >= 1 version");
    if (maxRetransmits < 0)
        return ValidationResult(
            "GeoRepOptions: maxRetransmits must be >= 0");
    if (retransmitBackoffS < 0.0)
        return ValidationResult(
            "GeoRepOptions: retransmitBackoffS must be >= 0");
    if (lossProbability < 0.0 || lossProbability >= 1.0)
        return ValidationResult(
            "GeoRepOptions: lossProbability must be in [0, 1)");
    return {};
}

ValidationResult
GeoRepConfig::validate() const
{
    if (auto r = opt.validate(); !r)
        return r;
    if (sites.empty())
        return ValidationResult(
            "GeoRepConfig: at least one WAN site is required");
    for (const WanSite &w : sites) {
        if (w.name.empty())
            return ValidationResult(
                "GeoRepConfig: WAN site name must be non-empty");
        if (w.gbps <= 0.0)
            return ValidationResult(
                "GeoRepConfig: WAN site gbps must be > 0");
        if (w.latencyS < 0.0)
            return ValidationResult(
                "GeoRepConfig: WAN site latency must be >= 0");
    }
    if (homeUplinkGbps <= 0.0 || siteUplinkGbps <= 0.0)
        return ValidationResult(
            "GeoRepConfig: rack uplinks must be > 0 Gbps");
    if (!tunerSpec.hasGpu())
        return ValidationResult(
            "GeoRepConfig: the home Tuner needs a GPU");
    if (std::string err = faults.validate(); !err.empty())
        return ValidationResult(std::move(err));
    return {};
}

namespace {

/** Update queues never block the publisher (async distribution). */
constexpr size_t kUnbounded = static_cast<size_t>(1) << 40;

} // namespace

struct GeoRepDataflow::Impl
{
    Impl(sim::Simulator &s_, const GeoRepOptions &o,
         const GeoRepPorts &p)
        : s(s_), opt(o), ports(p), done(s_)
    {
        assert(opt.validate().ok());
        assert(ports.fabric && ports.gpu &&
               "georep needs a fabric and the Tuner GPU");
        assert(ports.homeNode != net::kNoNode);
        assert(!ports.siteNodes.empty() &&
               ports.siteNodes.size() == ports.siteNames.size());
        // Independent per-site loss streams: one site's draw sequence
        // never depends on how pushes interleave with another's.
        ndp::Rng master(opt.seed ^ 0x6e0caf3a11d37ull);
        sites.resize(ports.siteNodes.size());
        for (size_t i = 0; i < sites.size(); ++i) {
            sites[i].name = ports.siteNames[i];
            sites[i].rng = master.split();
            updates.push_back(std::make_unique<sim::Channel<int>>(
                s, kUnbounded));
        }
        if (ports.trace) {
            trkAgent = ports.trace->track(
                obs::scopedNode(ports.scope, "georep"), "agent");
            for (SiteState &st : sites)
                st.trk = ports.trace->track(
                    obs::scopedNode(ports.scope, "georep"), st.name);
        }
        publishAtS.reserve(static_cast<size_t>(opt.nRounds));
    }

    struct SiteState
    {
        std::string name;
        int version = 0;
        uint64_t deltaPushes = 0;
        uint64_t checkpointPushes = 0;
        uint64_t duplicates = 0;
        uint64_t retransmits = 0;
        uint64_t fallbacks = 0;
        double wanBytes = 0.0;
        ndp::LatencyHistogram staleness;
        ndp::Rng rng;
        int trk = 0;
    };

    static sim::Task agentLoop(Impl &im);
    static sim::Task siteLoop(Impl &im, size_t i);
    static sim::Task monitor(Impl &im);

    sim::Simulator &s;
    GeoRepOptions opt;
    GeoRepPorts ports;
    /** Joined by the monitor: agent + one distributor per site. */
    sim::WaitGroup done;
    std::vector<std::unique_ptr<sim::Channel<int>>> updates;
    std::vector<SiteState> sites;
    /** Publication time of version v at index v-1 (staleness base). */
    std::vector<double> publishAtS;
    int published = 0;
    double deltaWanBytes = 0.0;
    double checkpointWanBytes = 0.0;
    int trkAgent = 0;
};

/** Home agent: observe drift for one interval, fine-tune centrally on
 * the Tuner GPU, publish the new version to every site's queue without
 * waiting for any of them.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: the Impl
 * outlives s.run(), which joins this task)
 */
// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::Task
GeoRepDataflow::Impl::agentLoop(Impl &im)
{
    for (int v = 1; v <= im.opt.nRounds; ++v) {
        // Drift accumulates where uploads land; one observation window
        // per round before the central fine-tune reacts.
        co_await im.s.delay(im.opt.roundIntervalS);
        if (im.ports.sched)
            co_await im.ports.sched->yield(im.ports.jobId);
        co_await im.ports.gpu->compute(im.opt.fineTuneS);
        if (im.ports.sched)
            im.ports.sched->charge(im.ports.jobId, im.opt.fineTuneS);
        im.publishAtS.push_back(im.s.now());
        im.published = v;
        if (im.ports.trace)
            im.ports.trace->instant(
                im.trkAgent, obs::Cat::Service, "publish", im.s.now(),
                {{"version", static_cast<double>(v)}});
        for (auto &ch : im.updates)
            co_await ch->put(v); // unbounded: never parks the agent
    }
    for (auto &ch : im.updates)
        ch->close();
    im.done.done();
}

/** Per-site distributor: drain the site's update queue in order,
 * ship the missing delta chain (or a full checkpoint past the
 * staleness bound / retransmit budget), ack, record staleness.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: the Impl
 * outlives s.run(), which joins this task)
 */
// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::Task
GeoRepDataflow::Impl::siteLoop(Impl &im, size_t i)
{
    SiteState &st = im.sites[i];
    sim::Channel<int> &ch = *im.updates[i];
    net::NetFabric &fab = *im.ports.fabric;
    const net::NodeId home = im.ports.homeNode;
    const net::NodeId node = im.ports.siteNodes[i];
    while (auto v = co_await ch.get()) {
        // Coalesce: ship the newest *published* version, not each
        // queued notification — a distributor that fell behind jumps
        // straight to the head, and the stale queue entries drain as
        // duplicates (the AlreadyCurrent disposition of
        // core/checkpoint.h's version reconciliation).
        const int target = im.published;
        if (target <= st.version) {
            ++st.duplicates;
            continue;
        }
        const int lag = target - st.version;
        if (im.ports.monitor)
            im.ports.monitor->onGeoLag(
                im.ports.scope.empty() ? "georep" : im.ports.scope,
                im.ports.siteNames[i], im.s.now(), lag,
                im.opt.stalenessBound);
        uint64_t span = 0;
        if (im.ports.trace)
            span = im.ports.trace->asyncBegin(
                st.trk, obs::Cat::Service, "push", im.s.now(),
                {{"version", static_cast<double>(target)},
                 {"lag", static_cast<double>(lag)}});
        // Bounded staleness: past the bound, one checkpoint is both
        // cheaper than the delta chain and safer to apply.
        bool ship_full =
            im.opt.fullCheckpoints || lag > im.opt.stalenessBound;
        if (!ship_full) {
            // The missing chain st.version -> target, concatenated
            // into one push; a lost copy retransmits the whole chain.
            const double bytes =
                static_cast<double>(lag) * im.opt.deltaBytes;
            bool delivered = false;
            double backoff = im.opt.retransmitBackoffS;
            for (int a = 0; a <= im.opt.maxRetransmits; ++a) {
                co_await fab.transfer(home, node, bytes,
                                      net::FlowClass::GeoDelta);
                st.wanBytes += bytes;
                im.deltaWanBytes += bytes;
                if (im.opt.lossProbability > 0.0 &&
                    st.rng.chance(im.opt.lossProbability)) {
                    ++st.retransmits;
                    co_await im.s.delay(backoff);
                    backoff *= 2.0;
                    continue;
                }
                delivered = true;
                break;
            }
            if (delivered)
                ++st.deltaPushes;
            else {
                // Budget exhausted: never hang, never leave the site
                // stale — fall back to the reliable checkpoint.
                ++st.fallbacks;
                ship_full = true;
            }
        }
        if (ship_full) {
            // Checkpoints ride a reliable stream: retransmissions are
            // implicit in the fluid flow (the LinkDown conservation
            // argument), so a checkpoint always converges.
            co_await fab.transfer(home, node, im.opt.fullBytes,
                                  net::FlowClass::GeoDelta);
            st.wanBytes += im.opt.fullBytes;
            im.checkpointWanBytes += im.opt.fullBytes;
            ++st.checkpointPushes;
        }
        st.version = target;
        const double stale =
            im.s.now() -
            im.publishAtS[static_cast<size_t>(target - 1)];
        st.staleness.record(stale);
        if (im.ports.trace)
            im.ports.trace->asyncEnd(
                span, st.trk, obs::Cat::Service, "push", im.s.now(),
                {{"stalenessS", stale},
                 {"checkpoint", ship_full ? 1.0 : 0.0}});
    }
    im.done.done();
}

/** ndplint: allow(coroutine-ref-param, coroutine-escape: the Impl
 * outlives s.run(), which joins this task)
 */
// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::Task
GeoRepDataflow::Impl::monitor(Impl &im)
{
    co_await im.done.wait();
    im.ports.jobDone->done();
}

GeoRepDataflow::GeoRepDataflow(sim::Simulator &s,
                               const GeoRepOptions &opt,
                               const GeoRepPorts &ports)
    : impl_(std::make_unique<Impl>(s, opt, ports))
{}

GeoRepDataflow::~GeoRepDataflow() = default;

void
GeoRepDataflow::spawn()
{
    Impl &im = *impl_;
    im.done.add(1 + static_cast<int>(im.sites.size()));
    im.s.spawn(Impl::agentLoop(im));
    for (size_t i = 0; i < im.sites.size(); ++i)
        im.s.spawn(Impl::siteLoop(im, i));
    if (im.ports.jobDone)
        im.s.spawn(Impl::monitor(im));
}

int
GeoRepDataflow::siteVersion(size_t site) const
{
    return impl_->sites[site].version;
}

void
GeoRepDataflow::finalize(GeoRepReport &rep)
{
    Impl &im = *impl_;
    rep.publishedVersions = im.published;
    rep.deltaWanBytes = im.deltaWanBytes;
    rep.checkpointWanBytes = im.checkpointWanBytes;
    rep.wanBytes = im.deltaWanBytes + im.checkpointWanBytes;
    rep.minSiteVersion = im.published;
    ndp::LatencyHistogram merged;
    for (Impl::SiteState &st : im.sites) {
        SiteProgress p;
        p.name = st.name;
        p.version = st.version;
        p.deltaPushes = st.deltaPushes;
        p.checkpointPushes = st.checkpointPushes;
        p.duplicates = st.duplicates;
        p.retransmits = st.retransmits;
        p.fallbacks = st.fallbacks;
        p.wanBytes = st.wanBytes;
        p.stalenessP50S = st.staleness.percentile(50.0);
        p.stalenessP95S = st.staleness.percentile(95.0);
        p.stalenessMaxS = st.staleness.max();
        rep.sites.push_back(std::move(p));
        rep.minSiteVersion = std::min(rep.minSiteVersion, st.version);
        rep.retransmits += st.retransmits;
        rep.checkpointFallbacks += st.fallbacks;
        rep.duplicates += st.duplicates;
        merged.merge(st.staleness);
    }
    rep.converged = im.published == im.opt.nRounds &&
                    rep.minSiteVersion == im.published;
    rep.stalenessP50S = merged.percentile(50.0);
    rep.stalenessP95S = merged.percentile(95.0);
    rep.stalenessP99S = merged.percentile(99.0);
    rep.stalenessMaxS = merged.max();
}

GeoRepReport
runGeoReplication(const GeoRepConfig &cfg)
{
    cfg.validate().orThrow();
    sim::Simulator s;
    obs::Tracer *trace = obs::Tracer::current();

    // WAN topology: the home region's rack plus one rack per remote
    // site, each site joined to home by its duplex WAN trunk.
    net::Topology topo;
    const net::SiteId home_site = topo.addSite("home");
    const net::RackId home_rack =
        topo.addRack(home_site, cfg.homeUplinkGbps);
    std::vector<net::RackId> site_racks;
    for (const WanSite &w : cfg.sites) {
        const net::SiteId sid = topo.addSite(w.name);
        site_racks.push_back(topo.addRack(sid, cfg.siteUplinkGbps));
        topo.addWanLink(home_site, sid, w.gbps, w.latencyS);
    }

    net::NetFabric fabric(s, topo);
    const net::NodeId home_node =
        fabric.addNode(cfg.tunerSpec.nic, home_rack);
    fabric.setIngress(home_node);
    std::vector<net::NodeId> site_nodes;
    std::vector<std::string> site_names;
    for (size_t i = 0; i < cfg.sites.size(); ++i) {
        site_nodes.push_back(fabric.addNode(
            cfg.siteSpec.nic, site_racks[i]));
        site_names.push_back(cfg.sites[i].name);
    }
    fabric.setTracer(trace);

    sim::FaultInjector injector(
        s, cfg.faults, static_cast<int>(cfg.sites.size()));
    injector.attachObserver(obs::HealthMonitor::current());
    sim::FaultInjector *faults =
        injector.armed() ? &injector : nullptr;
    fabric.attachFaults(faults);

    hw::GpuExec gpu(s, *cfg.tunerSpec.gpu, cfg.tunerSpec.nGpus);

    GeoRepPorts ports;
    ports.fabric = &fabric;
    ports.homeNode = home_node;
    ports.siteNodes = site_nodes;
    ports.siteNames = site_names;
    ports.gpu = &gpu;
    ports.trace = trace;
    ports.monitor = obs::HealthMonitor::current();
    GeoRepDataflow flow(s, cfg.opt, ports);

    obs::GaugeSet gauges(trace);
    if (trace) {
        for (size_t i = 0; i < cfg.sites.size(); ++i)
            gauges.add(obs::scopedNode("georep", site_names[i]),
                       "version", [&flow, i] {
                           return static_cast<double>(
                               flow.siteVersion(i));
                       });
        for (size_t t = 0; t < topo.nTrunks(); ++t) {
            const net::Trunk &tr = topo.trunk(t);
            if (!tr.wan || tr.siteA != home_site)
                continue; // one gauge per site pair (home -> site)
            gauges.add("net",
                       "wan." + topo.siteName(tr.siteB) + ".util",
                       [&fabric, t] {
                           return fabric.trunkUtilization(t);
                       });
        }
    }

    flow.spawn();
    s.run();
    s.reapFinished();

    GeoRepReport rep;
    flow.finalize(rep);
    rep.seconds = s.now();
    rep.events = s.processedEvents();
    rep.net = fabric.report();
    rep.faults = injector.report();
    return rep;
}

} // namespace ndp::core::georep
