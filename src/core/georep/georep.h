/**
 * @file
 * WAN geo-replication of model deltas (ROADMAP item 4; §5 + the
 * Check-N-Run distribution model of core/delta.h stretched across
 * regions).
 *
 * A photo fleet serving several regions cannot fine-tune everywhere:
 * drift is observed where uploads land, but training happens once, in
 * the home region, and the resulting model *versions* must reach every
 * remote serving site over WAN links that are orders of magnitude
 * slower (and ~1000x higher latency) than the datacenter fabric. This
 * module is that distribution agent:
 *
 *  - The home agent runs a drift-observe -> central-fine-tune ->
 *    publish loop: every round it waits one observation interval,
 *    occupies the Tuner GPU for the fine-tune, and publishes version
 *    v+1. Publication is *asynchronous*: the agent never waits for any
 *    site (a slow WAN must not stall training cadence).
 *  - One distributor coroutine per site drains that site's update
 *    queue in order. A site at version s receiving version v > s gets
 *    the missing delta chain (s -> v, one push of (v - s) deltas)
 *    UNLESS the lag exceeds the staleness bound, in which case the
 *    agent ships one full checkpoint instead — chaining B+ deltas
 *    costs more WAN bytes than the snapshot and widens the corruption
 *    window (bounded staleness, the Check-N-Run catch-up rule).
 *  - Delta pushes are unreliable: each copy may be lost (seeded
 *    per-site draw) and is retransmitted with bounded exponential
 *    backoff; a push that exhausts the retransmit budget falls back to
 *    a full checkpoint, which is modeled as a reliable stream (its
 *    retransmissions are implicit in the fluid flow, the same
 *    conservation argument as LinkDown stall semantics). A site
 *    therefore always converges to the newest published version —
 *    never-hang, never-serve-stale-forever.
 *  - Staleness is measured per ack: sim seconds between a version's
 *    publication and the site acknowledging it, recorded in an HDR
 *    histogram per site (percentiles, not just the mean).
 *
 * WAN link faults (FaultPlan::degradeWanLink / downWanLink) act on the
 * fabric's WAN trunks: a degrade slows pushes (retransmit timers keep
 * running), a down window freezes them in place until it closes.
 * tests/test_georep.cc pins the fault matrix: retransmit, fallback to
 * checkpoint, never-hang, and byte conservation.
 *
 * Determinism rule: one Rng stream per site (split from the options
 * seed), flows in arrival order, no wall clock. Same options + same
 * FaultPlan => bit-identical GeoRepReport.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "hw/devices.h"
#include "net/fabric.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "sim/wait_group.h"

namespace ndp::core::sched {
class Scheduler;
} // namespace ndp::core::sched

namespace ndp::core::georep {

/** Policy knobs of one geo-replication job (fleet-independent). */
struct GeoRepOptions
{
    /** Model versions published (one fine-tune round each). */
    int nRounds = 8;
    /** Drift-observation window before each fine-tune, seconds. */
    double roundIntervalS = 30.0;
    /** Tuner GPU seconds per central fine-tune. */
    double fineTuneS = 2.0;
    /** Encoded delta payload per version (bench_ext_georep measures
     *  this with the real core/delta.h encoder). */
    double deltaBytes = 250.0e3;
    /** Full checkpoint payload (the fallback / baseline unit). */
    double fullBytes = 98.0e6;
    /** Version lag beyond which a site catches up via one full
     *  checkpoint instead of a delta chain (bounded staleness). */
    int stalenessBound = 3;
    /** Lost-push retransmissions before checkpoint fallback. */
    int maxRetransmits = 5;
    /** First retransmit backoff, seconds; doubles per attempt. */
    double retransmitBackoffS = 0.1;
    /** Per-copy WAN loss probability (seeded per-site draws). */
    double lossProbability = 0.0;
    /** Baseline mode: ship a full checkpoint every round (what the
     *  delta traffic reduction is measured against). */
    bool fullCheckpoints = false;
    uint64_t seed = 0x9e0c3b5ull;

    ValidationResult validate() const;
};

/** Standalone single-job run: the fleet the agent replicates over. */
struct GeoRepConfig
{
    GeoRepOptions opt;
    /** Remote regions (>= 1). */
    std::vector<WanSite> sites = {{"eu", 1.0, 0.05},
                                  {"ap", 0.6, 0.11}};
    /** Home-rack uplink; generous so only the WAN constrains. */
    double homeUplinkGbps = 100.0;
    /** Remote-rack uplink (site core -> replica rack). */
    double siteUplinkGbps = 25.0;
    /** Home Tuner host (GPU + NIC). */
    hw::ServerSpec tunerSpec = hw::p32xlarge();
    /** Remote replica node. */
    hw::ServerSpec siteSpec = hw::g4dn4xlarge(true);
    sim::FaultPlan faults;

    ValidationResult validate() const;
};

/** One site's replication progress (per-site tracking of the agent). */
struct SiteProgress
{
    std::string name;
    /** Newest version the site acknowledged. */
    int version = 0;
    /** Delta-chain pushes applied. */
    uint64_t deltaPushes = 0;
    /** Full checkpoints applied (staleness catch-up + fallback). */
    uint64_t checkpointPushes = 0;
    /** Pushes skipped because the site was already current. */
    uint64_t duplicates = 0;
    /** Lost copies retransmitted. */
    uint64_t retransmits = 0;
    /** Retransmit budgets exhausted -> checkpoint fallback. */
    uint64_t fallbacks = 0;
    /** Payload bytes shipped to this site (delta + checkpoint). */
    double wanBytes = 0.0;
    /** @name Publication-to-ack staleness, seconds
     * @{ */
    double stalenessP50S = 0.0;
    double stalenessP95S = 0.0;
    double stalenessMaxS = 0.0;
    /** @} */
};

/** What one geo-replication run did. */
struct GeoRepReport
{
    /** @name Standalone-run envelope (zero inside a Cluster)
     * @{ */
    double seconds = 0.0;
    uint64_t events = 0;
    net::NetReport net;
    sim::FaultReport faults;
    /** @} */

    int publishedVersions = 0;
    /** Minimum acked version across sites; == publishedVersions when
     *  every site converged (the conservation assert). */
    int minSiteVersion = 0;
    bool converged = false;

    /** @name WAN traffic split (payload bytes)
     * @{ */
    double wanBytes = 0.0;
    double deltaWanBytes = 0.0;
    double checkpointWanBytes = 0.0;
    /** @} */

    uint64_t retransmits = 0;
    uint64_t checkpointFallbacks = 0;
    uint64_t duplicates = 0;

    /** @name Fleet-wide staleness percentiles, seconds
     * @{ */
    double stalenessP50S = 0.0;
    double stalenessP95S = 0.0;
    double stalenessP99S = 0.0;
    double stalenessMaxS = 0.0;
    /** @} */

    std::vector<SiteProgress> sites;
};

/**
 * Borrowed resources one geo-replication job runs against (the
 * GeoRepDataflow analogue of FtDmpPorts). The sched / jobId / jobDone
 * trio follows the zero-cost rule: all null/-1 standalone.
 */
struct GeoRepPorts
{
    net::NetFabric *fabric = nullptr;
    /** Home node pushes originate from (the Tuner host). */
    net::NodeId homeNode = net::kNoNode;
    /** One replica node per site, site order. */
    std::vector<net::NodeId> siteNodes;
    /** Site display names, same order as siteNodes. */
    std::vector<std::string> siteNames;
    /** Tuner GPU the central fine-tune occupies. */
    hw::GpuExec *gpu = nullptr;
    obs::Tracer *trace = nullptr;
    /** Streaming health monitor (null = monitoring off, no-op). */
    obs::HealthMonitor *monitor = nullptr;
    /** Per-job trace prefix (obs::scopedNode); empty = untouched. */
    std::string scope;
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    /** done() once when the agent and every site drain. */
    sim::WaitGroup *jobDone = nullptr;
};

/**
 * One geo-replication dataflow against borrowed devices: owns its
 * update queues, per-site progress, and staleness histograms; borrows
 * the fabric, nodes, and GPU from the ports.
 */
class GeoRepDataflow
{
  public:
    GeoRepDataflow(sim::Simulator &s, const GeoRepOptions &opt,
                   const GeoRepPorts &ports);
    ~GeoRepDataflow();

    GeoRepDataflow(const GeoRepDataflow &) = delete;
    GeoRepDataflow &operator=(const GeoRepDataflow &) = delete;

    /** Spawn the home agent and one distributor per site. */
    void spawn();

    /** Fill the replication fields of @p rep after the run (the
     *  standalone envelope — seconds/net/faults — is the caller's). */
    void finalize(GeoRepReport &rep);

    /** Newest version @p site acked so far (gauges sample this). */
    int siteVersion(size_t site) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Standalone entry point: build the WAN topology + fleet described
 *  by @p cfg, run one geo-replication job, return the full report. */
GeoRepReport runGeoReplication(const GeoRepConfig &cfg);

} // namespace ndp::core::georep
