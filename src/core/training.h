/**
 * @file
 * Fine-tuning simulators: FT-DMP across PipeStores + Tuner (§5.1-5.2)
 * and the centralized SRV baseline (§6.3).
 *
 * FT-DMP splits the model at a cut index: blocks [0, cut) replicate on
 * PipeStores (forward only, no synchronization), blocks [cut, N) run
 * on the Tuner. The dataset is divided into N_run sub-datasets; with
 * pipelining enabled, PipeStores extract features for run r+1 while
 * the Tuner trains on run r. The degenerate cut == N ("+FC") places
 * the trainable classifier on the stores and pays per-iteration weight
 * synchronization — the naive NDP configuration of §4.1.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/inference.h"
#include "core/pipeline.h"
#include "core/report.h"

namespace ndp::core {

namespace sched {
class Scheduler;
}

struct TrainOptions
{
    /**
     * Partition index: blocks [0, cut) on PipeStores. kCutAuto puts
     * the cut at the classifier boundary (all weight-freeze layers
     * offloaded), which is where APO lands for every paper model.
     */
    static constexpr size_t kCutAuto = static_cast<size_t>(-1);

    size_t cut = kCutAuto;
    /** Pipeline runs (N_run, §5.2). */
    int nRun = 3;
    /** Overlap Store-stage and Tuner-stage across runs. */
    bool pipelined = true;
    /** Tuner classifier epochs per run. */
    int tunerEpochs = kDefaultTunerEpochs;
    int feBatch = kInferBatch;
    int trainBatch = kTrainBatch;
    /** Redistribute the updated model as Check-N-Run deltas. */
    bool distributeDeltas = true;
    /**
     * Per-store GPU speed multipliers for heterogeneity / straggler
     * injection (empty = all 1.0). A 0.5 entry makes that store's
     * accelerator half as fast. Under FT-DMP a straggler only delays
     * its own shard; under the naive "+FC" configuration the
     * per-iteration weight synchronization couples the whole fleet to
     * it (§4.1).
     */
    std::vector<double> storeSpeedFactor;

    double
    speedOf(int store) const
    {
        if (store < 0 ||
            static_cast<size_t>(store) >= storeSpeedFactor.size())
            return 1.0;
        return storeSpeedFactor[static_cast<size_t>(store)];
    }

    size_t
    resolveCut(const models::ModelSpec &m) const
    {
        return cut == kCutAuto ? m.classifierStart() : cut;
    }

    /**
     * Reject option sets the trainers would divide by (the dataset is
     * split across nRun sub-datasets and batched by feBatch/trainBatch).
     * The result is [[nodiscard]]; entry points chain `.orThrow()`.
     */
    ValidationResult
    validate() const
    {
        if (nRun < 1)
            return ValidationResult("TrainOptions: nRun must be >= 1");
        if (tunerEpochs < 1)
            return ValidationResult(
                "TrainOptions: tunerEpochs must be >= 1");
        if (feBatch < 1)
            return ValidationResult(
                "TrainOptions: feBatch must be >= 1");
        if (trainBatch < 1)
            return ValidationResult(
                "TrainOptions: trainBatch must be >= 1");
        for (double f : storeSpeedFactor)
            if (f <= 0.0)
                return ValidationResult(
                    "TrainOptions: storeSpeedFactor entries must be > 0");
        return {};
    }
};

/**
 * Borrowed resources one FT-DMP job runs against. A single-tenant run
 * (runFtDmpTraining) owns everything and fills this with its own
 * devices; a multi-job Cluster hands each job its store subset plus
 * the *shared* fabric, Tuner GPU, and scheduler. The sched / jobId /
 * jobDone trio follows the zero-cost rule: all null/-1 in
 * single-tenant runs, leaving the event sequence byte-identical.
 */
struct FtDmpPorts
{
    net::NetFabric *fabric = nullptr;
    /** Fabric nodes of the job's stores, job-local order. */
    std::vector<net::NodeId> storeNodes;
    net::NodeId tunerNode = net::kNoNode;
    hw::GpuExec *tunerGpu = nullptr;
    /** The job's store stations, job-local order. */
    std::vector<StoreStations *> stores;
    /** Fleet store index of stores[k] (fault RNG stream + trace
     *  names). Single-tenant: fleetIdx[k] == k. */
    std::vector<int> fleetIdx;
    /** Armed fault injector or null (zero-cost rule). */
    sim::FaultInjector *faults = nullptr;
    obs::Tracer *trace = nullptr;
    /** Per-job trace prefix (obs::scopedNode); empty = untouched. */
    std::string scope;
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    /** done() once when the whole dataflow drains (multi-job only:
     *  null spawns no monitor coroutine at all). */
    sim::WaitGroup *jobDone = nullptr;
};

/**
 * One FT-DMP fine-tuning dataflow instantiated against FtDmpPorts:
 * owns its channels, pipelines, recovery coordinator, and metrics;
 * borrows every device from the ports.
 */
class FtDmpDataflow
{
  public:
    FtDmpDataflow(sim::Simulator &s, const ExperimentConfig &cfg,
                  const TrainOptions &opt, const FtDmpPorts &ports);
    ~FtDmpDataflow();

    FtDmpDataflow(const FtDmpDataflow &) = delete;
    FtDmpDataflow &operator=(const FtDmpDataflow &) = delete;

    /** Spawn every stage coroutine (same order as the single-tenant
     *  entry point always used). */
    void spawn();

    /** Fill stages / traffic fields of @p rep after the run. */
    void finalize(TrainReport &rep);

    /** Sim time the last feature left the stores. */
    double feEndTime() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** FT-DMP fine-tuning across cfg.nStores PipeStores and one Tuner. */
TrainReport runFtDmpTraining(const ExperimentConfig &cfg,
                             const TrainOptions &opt);

/** Borrowed resources of one SRV fine-tuning job (see FtDmpPorts). */
struct SrvFineTunePorts
{
    net::NetFabric *fabric = nullptr;
    /** Fabric nodes of the storage servers, job-local order. */
    std::vector<net::NodeId> srvNodes;
    /** Storage-server disks, job-local order (empty = host-local). */
    std::vector<hw::Disk *> disks;
    net::NodeId hostNode = net::kNoNode;
    hw::GpuExec *gpus = nullptr;
    hw::CpuPool *cpu = nullptr;
    sim::FaultInjector *faults = nullptr;
    obs::Tracer *trace = nullptr;
    std::string scope;
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    sim::WaitGroup *jobDone = nullptr;
};

/** One SRV fine-tuning dataflow against borrowed host devices. */
class SrvFineTuneDataflow
{
  public:
    SrvFineTuneDataflow(sim::Simulator &s, const ExperimentConfig &cfg,
                        SrvVariant variant, int tuner_epochs,
                        bool pipelined, const SrvFineTunePorts &ports);
    ~SrvFineTuneDataflow();

    SrvFineTuneDataflow(const SrvFineTuneDataflow &) = delete;
    SrvFineTuneDataflow &operator=(const SrvFineTuneDataflow &) =
        delete;

    void spawn();
    void finalize(TrainReport &rep);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Centralized fine-tuning on the SRV host (2x V100): storage servers
 * stream (optionally compressed) preprocessed binaries, the host runs
 * feature extraction, then trains the classifier. @p variant selects
 * the wire format exactly as for offline inference.
 */
TrainReport runSrvFineTuning(const ExperimentConfig &cfg,
                             SrvVariant variant = SrvVariant::Compressed,
                             int tuner_epochs = kDefaultTunerEpochs,
                             bool pipelined = true);

} // namespace ndp::core
