/**
 * @file
 * Fine-tuning simulators: FT-DMP across PipeStores + Tuner (§5.1-5.2)
 * and the centralized SRV baseline (§6.3).
 *
 * FT-DMP splits the model at a cut index: blocks [0, cut) replicate on
 * PipeStores (forward only, no synchronization), blocks [cut, N) run
 * on the Tuner. The dataset is divided into N_run sub-datasets; with
 * pipelining enabled, PipeStores extract features for run r+1 while
 * the Tuner trains on run r. The degenerate cut == N ("+FC") places
 * the trainable classifier on the stores and pays per-iteration weight
 * synchronization — the naive NDP configuration of §4.1.
 */

#pragma once

#include <vector>

#include "core/config.h"
#include "core/inference.h"
#include "core/report.h"

namespace ndp::core {

struct TrainOptions
{
    /**
     * Partition index: blocks [0, cut) on PipeStores. kCutAuto puts
     * the cut at the classifier boundary (all weight-freeze layers
     * offloaded), which is where APO lands for every paper model.
     */
    static constexpr size_t kCutAuto = static_cast<size_t>(-1);

    size_t cut = kCutAuto;
    /** Pipeline runs (N_run, §5.2). */
    int nRun = 3;
    /** Overlap Store-stage and Tuner-stage across runs. */
    bool pipelined = true;
    /** Tuner classifier epochs per run. */
    int tunerEpochs = kDefaultTunerEpochs;
    int feBatch = kInferBatch;
    int trainBatch = kTrainBatch;
    /** Redistribute the updated model as Check-N-Run deltas. */
    bool distributeDeltas = true;
    /**
     * Per-store GPU speed multipliers for heterogeneity / straggler
     * injection (empty = all 1.0). A 0.5 entry makes that store's
     * accelerator half as fast. Under FT-DMP a straggler only delays
     * its own shard; under the naive "+FC" configuration the
     * per-iteration weight synchronization couples the whole fleet to
     * it (§4.1).
     */
    std::vector<double> storeSpeedFactor;

    double
    speedOf(int store) const
    {
        if (store < 0 ||
            static_cast<size_t>(store) >= storeSpeedFactor.size())
            return 1.0;
        return storeSpeedFactor[static_cast<size_t>(store)];
    }

    size_t
    resolveCut(const models::ModelSpec &m) const
    {
        return cut == kCutAuto ? m.classifierStart() : cut;
    }

    /**
     * Reject option sets the trainers would divide by (the dataset is
     * split across nRun sub-datasets and batched by feBatch/trainBatch).
     * The result is [[nodiscard]]; entry points chain `.orThrow()`.
     */
    ValidationResult
    validate() const
    {
        if (nRun < 1)
            return ValidationResult("TrainOptions: nRun must be >= 1");
        if (tunerEpochs < 1)
            return ValidationResult(
                "TrainOptions: tunerEpochs must be >= 1");
        if (feBatch < 1)
            return ValidationResult(
                "TrainOptions: feBatch must be >= 1");
        if (trainBatch < 1)
            return ValidationResult(
                "TrainOptions: trainBatch must be >= 1");
        for (double f : storeSpeedFactor)
            if (f <= 0.0)
                return ValidationResult(
                    "TrainOptions: storeSpeedFactor entries must be > 0");
        return {};
    }
};

/** FT-DMP fine-tuning across cfg.nStores PipeStores and one Tuner. */
TrainReport runFtDmpTraining(const ExperimentConfig &cfg,
                             const TrainOptions &opt);

/**
 * Centralized fine-tuning on the SRV host (2x V100): storage servers
 * stream (optionally compressed) preprocessed binaries, the host runs
 * feature extraction, then trains the classifier. @p variant selects
 * the wire format exactly as for offline inference.
 */
TrainReport runSrvFineTuning(const ExperimentConfig &cfg,
                             SrvVariant variant = SrvVariant::Compressed,
                             int tuner_epochs = kDefaultTunerEpochs,
                             bool pipelined = true);

} // namespace ndp::core
