/**
 * @file
 * Offline-inference simulators: NDPipe PipeStores vs the centralized
 * SRV configurations (§6.2), built on the discrete-event engine.
 *
 * NDPipe runs the NPE pipeline inside every PipeStore: load (disk) ->
 * decompress/preprocess (CPU) -> FE&Cl (GPU); only labels leave the
 * store. The SRV variants ship image data to a 2xV100 host first:
 *
 *  - RawRemote:    raw JPEGs over the network, host preprocesses
 *                  (the "Typical" system of §3.4 / Fig. 5b)
 *  - RawLocal:     raw images already on the host, host preprocesses
 *                  (the "Ideal" system of §3.4)
 *  - Ideal:        preprocessed binaries local to the host (SRV-I)
 *  - Preprocessed: preprocessed binaries over the network (SRV-P)
 *  - Compressed:   deflated binaries over the network, host
 *                  decompresses on eight cores (SRV-C)
 */

#pragma once

#include "core/config.h"
#include "core/report.h"

namespace ndp::core {

enum class SrvVariant
{
    RawRemote,
    RawLocal,
    Ideal,
    Preprocessed,
    Compressed,
};

const char *srvVariantName(SrvVariant v);

/** Offline inference across cfg.nStores PipeStores (Tuner idle). */
InferenceReport runNdpOfflineInference(const ExperimentConfig &cfg);

/** Offline inference on the SRV host fed by cfg.srvStorageServers. */
InferenceReport runSrvOfflineInference(const ExperimentConfig &cfg,
                                       SrvVariant variant);

/**
 * Per-image stage service times for a single PipeStore under the given
 * NPE options (Fig. 12's task breakdown), in seconds per image.
 */
StageMetrics npeStageTimes(const ExperimentConfig &cfg,
                           const NpeOptions &npe, bool fine_tuning);

} // namespace ndp::core
