/**
 * @file
 * Offline-inference simulators: NDPipe PipeStores vs the centralized
 * SRV configurations (§6.2), built on the discrete-event engine.
 *
 * NDPipe runs the NPE pipeline inside every PipeStore: load (disk) ->
 * decompress/preprocess (CPU) -> FE&Cl (GPU); only labels leave the
 * store. The SRV variants ship image data to a 2xV100 host first:
 *
 *  - RawRemote:    raw JPEGs over the network, host preprocesses
 *                  (the "Typical" system of §3.4 / Fig. 5b)
 *  - RawLocal:     raw images already on the host, host preprocesses
 *                  (the "Ideal" system of §3.4)
 *  - Ideal:        preprocessed binaries local to the host (SRV-I)
 *  - Preprocessed: preprocessed binaries over the network (SRV-P)
 *  - Compressed:   deflated binaries over the network, host
 *                  decompresses on eight cores (SRV-C)
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "core/report.h"

namespace ndp::core {

namespace sched {
class Scheduler;
}

enum class SrvVariant
{
    RawRemote,
    RawLocal,
    Ideal,
    Preprocessed,
    Compressed,
};

const char *srvVariantName(SrvVariant v);

/**
 * Borrowed resources one offline-inference job runs against (see
 * FtDmpPorts in core/training.h for the borrowing contract). The
 * sched / jobId / jobDone trio follows the zero-cost rule: all
 * null/-1 in single-tenant runs.
 */
struct OfflineInferPorts
{
    net::NetFabric *fabric = nullptr;
    /** Fabric nodes of the job's stores, job-local order. */
    std::vector<net::NodeId> storeNodes;
    /** Front-end index server the labels return to. */
    net::NodeId indexNode = net::kNoNode;
    /** The job's store stations, job-local order. */
    std::vector<StoreStations *> stores;
    /** Fleet store index of stores[k]; single-tenant: k. */
    std::vector<int> fleetIdx;
    sim::FaultInjector *faults = nullptr;
    obs::Tracer *trace = nullptr;
    /** Per-job trace prefix (obs::scopedNode); empty = untouched. */
    std::string scope;
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    sim::WaitGroup *jobDone = nullptr;
};

/** One NPE offline-inference dataflow against borrowed stores. */
class OfflineInferDataflow
{
  public:
    OfflineInferDataflow(sim::Simulator &s, const ExperimentConfig &cfg,
                         const OfflineInferPorts &ports);
    ~OfflineInferDataflow();

    OfflineInferDataflow(const OfflineInferDataflow &) = delete;
    OfflineInferDataflow &operator=(const OfflineInferDataflow &) =
        delete;

    void spawn();

    /** Per-store stage metrics, utilizations, and power into @p rep. */
    void finalize(InferenceReport &rep);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Offline inference across cfg.nStores PipeStores (Tuner idle). */
InferenceReport runNdpOfflineInference(const ExperimentConfig &cfg);

/** Offline inference on the SRV host fed by cfg.srvStorageServers. */
InferenceReport runSrvOfflineInference(const ExperimentConfig &cfg,
                                       SrvVariant variant);

/**
 * Per-image stage service times for a single PipeStore under the given
 * NPE options (Fig. 12's task breakdown), in seconds per image.
 */
StageMetrics npeStageTimes(const ExperimentConfig &cfg,
                           const NpeOptions &npe, bool fine_tuning);

} // namespace ndp::core
