/**
 * @file
 * Result records produced by the inference/training simulators.
 *
 * Every run reports wall time, throughput, network traffic, and a
 * cluster power/energy roll-up derived from component utilizations —
 * the quantities the paper's figures plot (IPS, minutes, TB, IPS/W,
 * IPS/kJ, $).
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hw/power.h"
#include "net/fabric.h"
#include "sim/fault.h"

namespace ndp::core {

/**
 * Per-stage accounting of one NPE dataflow (Figs. 5, 6, 9, 12).
 *
 * The time fields hold device-seconds of *service time* summed over
 * every batch a pipeline processed (queueing excluded), so dividing by
 * `itemsDone` yields measured per-image stage times directly
 * comparable with the analytical npeStageTimes() model. The byte and
 * utilization fields are filled by the pipeline engine; `operator+=`
 * merges pipelines (e.g. the per-store pipelines of one run) by
 * summing everything except `lastItemS` (max) and the utilizations,
 * which merge to a mean weighted by `pipelines` so the merged struct
 * is directly usable — no caller-side division.
 */
struct StageMetrics
{
    double readS = 0.0;
    double decompressS = 0.0;
    double preprocessS = 0.0;
    double transferS = 0.0;
    /** Feature extraction / FE&Cl GPU time. */
    double computeS = 0.0;
    /** Tuner-side classifier training time. */
    double tunerS = 0.0;
    /** Weight-synchronization time (naive NDP / +FC). */
    double syncS = 0.0;

    /** Bytes read from the pipeline's disks. */
    double readBytes = 0.0;
    /** Bytes moved over the ingress link ahead of the CPU stage. */
    double wireBytes = 0.0;
    /** Bytes shipped downstream after the GPU stage (labels/features). */
    double shipBytes = 0.0;

    /** Items that reached the pipeline sink (conservation checks). */
    uint64_t itemsDone = 0;
    /** Simulated time the sink saw its last item. */
    double lastItemS = 0.0;

    /** Mean station utilizations over the merged pipelines. */
    double diskUtil = 0.0;
    double cpuUtil = 0.0;
    double gpuUtil = 0.0;

    /** Pipelines merged into this record (the utilization weight);
     *  the pipeline engine's finalize() sets it to 1. Zero means "no
     *  measured pipelines" (e.g. a purely analytical breakdown). */
    uint64_t pipelines = 0;

    StageMetrics &
    operator+=(const StageMetrics &o)
    {
        readS += o.readS;
        decompressS += o.decompressS;
        preprocessS += o.preprocessS;
        transferS += o.transferS;
        computeS += o.computeS;
        tunerS += o.tunerS;
        syncS += o.syncS;
        readBytes += o.readBytes;
        wireBytes += o.wireBytes;
        shipBytes += o.shipBytes;
        itemsDone += o.itemsDone;
        lastItemS = std::max(lastItemS, o.lastItemS);
        uint64_t np = pipelines + o.pipelines;
        if (np > 0) {
            auto wmean = [&](double a, double b) {
                return (a * static_cast<double>(pipelines) +
                        b * static_cast<double>(o.pipelines)) /
                       static_cast<double>(np);
            };
            diskUtil = wmean(diskUtil, o.diskUtil);
            cpuUtil = wmean(cpuUtil, o.cpuUtil);
            gpuUtil = wmean(gpuUtil, o.gpuUtil);
        }
        pipelines = np;
        return *this;
    }
};

struct InferenceReport
{
    double seconds = 0.0;
    uint64_t images = 0;
    /** Offline-inference throughput. */
    double ips = 0.0;
    /** Bytes moved over the data-center network. */
    double netBytes = 0.0;
    /** Average cluster power while the run was active. */
    hw::PowerBreakdown power;
    std::vector<hw::ServerPowerSample> perServer;
    double energyJ = 0.0;
    /**
     * True if the batch did not fit in accelerator memory. Kept for
     * existing call sites; `faults.terminal == FaultClass::OutOfMemory`
     * is the typed form (with the sizing details in `oomNeededGiB`).
     */
    bool oom = false;
    /** Device memory the failing configuration would have needed. */
    double oomNeededGiB = 0.0;

    /** What the fault injector did to this run (empty plan = zeros). */
    sim::FaultReport faults;

    /** Fabric roll-up of every inter-node transfer in the run. */
    net::NetReport net;

    /** Mean utilizations (for sanity checks and Fig. 14 analysis). */
    double gpuUtil = 0.0;
    double cpuUtil = 0.0;

    /** Measured per-stage accounting from the pipeline engine. */
    StageMetrics stages;

    double
    ipsPerWatt() const
    {
        double w = power.totalW();
        return w > 0.0 ? ips / w : 0.0;
    }
};

struct TrainReport
{
    double seconds = 0.0;
    uint64_t images = 0;
    /** Feature-extraction throughput across stores. */
    double feIps = 0.0;
    /** End-to-end images per second of wall time. */
    double trainIps = 0.0;

    /** Feature / input bytes sent stores -> Tuner. */
    double dataTrafficBytes = 0.0;
    /** Weight-synchronization bytes (only when classifier is split). */
    double syncTrafficBytes = 0.0;
    /** Model redistribution bytes (Check-N-Run deltas). */
    double distributionBytes = 0.0;

    StageMetrics stages;

    /** What the fault injector did to this run (empty plan = zeros). */
    sim::FaultReport faults;

    /** Fabric roll-up of every inter-node transfer in the run. */
    net::NetReport net;

    hw::PowerBreakdown power;
    std::vector<hw::ServerPowerSample> perServer;
    double energyJ = 0.0;

    double
    ipsPerKj() const
    {
        return energyJ > 0.0
                   ? static_cast<double>(images) / (energyJ / 1000.0)
                   : 0.0;
    }
};

} // namespace ndp::core
