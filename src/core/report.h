/**
 * @file
 * Result records produced by the inference/training simulators.
 *
 * Every run reports wall time, throughput, network traffic, and a
 * cluster power/energy roll-up derived from component utilizations —
 * the quantities the paper's figures plot (IPS, minutes, TB, IPS/W,
 * IPS/kJ, $).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "hw/power.h"

namespace ndp::core {

struct InferenceReport
{
    double seconds = 0.0;
    uint64_t images = 0;
    /** Offline-inference throughput. */
    double ips = 0.0;
    /** Bytes moved over the data-center network. */
    double netBytes = 0.0;
    /** Average cluster power while the run was active. */
    hw::PowerBreakdown power;
    std::vector<hw::ServerPowerSample> perServer;
    double energyJ = 0.0;
    /** True if the batch did not fit in accelerator memory. */
    bool oom = false;

    /** Mean utilizations (for sanity checks and Fig. 14 analysis). */
    double gpuUtil = 0.0;
    double cpuUtil = 0.0;

    double
    ipsPerWatt() const
    {
        double w = power.totalW();
        return w > 0.0 ? ips / w : 0.0;
    }
};

/** Per-stage time breakdown of one pipeline (Figs. 5, 6, 9, 12). */
struct StageBreakdown
{
    double readS = 0.0;
    double decompressS = 0.0;
    double preprocessS = 0.0;
    double transferS = 0.0;
    /** Feature extraction / FE&Cl GPU time. */
    double computeS = 0.0;
    /** Tuner-side classifier training time. */
    double tunerS = 0.0;
    /** Weight-synchronization time (naive NDP / +FC). */
    double syncS = 0.0;
};

struct TrainReport
{
    double seconds = 0.0;
    uint64_t images = 0;
    /** Feature-extraction throughput across stores. */
    double feIps = 0.0;
    /** End-to-end images per second of wall time. */
    double trainIps = 0.0;

    /** Feature / input bytes sent stores -> Tuner. */
    double dataTrafficBytes = 0.0;
    /** Weight-synchronization bytes (only when classifier is split). */
    double syncTrafficBytes = 0.0;
    /** Model redistribution bytes (Check-N-Run deltas). */
    double distributionBytes = 0.0;

    StageBreakdown stages;

    hw::PowerBreakdown power;
    std::vector<hw::ServerPowerSample> perServer;
    double energyJ = 0.0;

    double
    ipsPerKj() const
    {
        return energyJ > 0.0
                   ? static_cast<double>(images) / (energyJ / 1000.0)
                   : 0.0;
    }
};

} // namespace ndp::core
