#include "core/apo.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/npe_common.h"
#include "models/throughput.h"
#include "net/estimate.h"
#include "storage/codec.h"

namespace ndp::core {

PartitionChoice
evaluateCut(const ExperimentConfig &cfg, const TrainOptions &opt,
            size_t cut)
{
    const models::ModelSpec &m = *cfg.model;
    PartitionChoice c;
    c.cut = cut;
    c.transferMBPerImage = m.transferMBAt(cut);

    double imgs_run = static_cast<double>(cfg.nImages) /
                      static_cast<double>(opt.nRun);

    // Store stage: the slowest of the 3-stage NPE pipeline, per image.
    // Steady-state stream rate: per-image seek is amortized away.
    double read_s = cfg.storeSpec.disk.streamReadSeconds(
                        m.inputMB() / kCompressionRatio * 1e6) -
                    cfg.storeSpec.disk.seekS;
    double dec_s = decompressSeconds(m.inputMB(),
                                     cfg.npe.decompressCores);
    double fe_s = models::feSecondsPerImage(*cfg.storeSpec.gpu, m, cut,
                                            opt.feBatch);
    double per_image_store = std::max({read_s, dec_s, fe_s});
    c.storeStageS =
        imgs_run * per_image_store / static_cast<double>(cfg.nStores);

    // Network stage: all stores funnel into the Tuner's ingress link;
    // the fabric is work-conserving, so the shared drain time equals
    // the aggregate bytes over the link rate (see net/estimate.h).
    c.netStageS = net::sharedIngressSeconds(
        imgs_run * c.transferMBPerImage * 1e6, cfg.networkGbps);

    // Tuner stage.
    double ingest = models::tunerIngestSecondsPerImage(
        *cfg.tunerSpec.gpu, m, cut, opt.feBatch);
    double epoch = models::tunerEpochSecondsPerImage(*cfg.tunerSpec.gpu,
                                                     m, opt.trainBatch);
    c.tunerStageS =
        imgs_run *
        (ingest + epoch * static_cast<double>(opt.tunerEpochs));

    double bottleneck =
        std::max({c.storeStageS, c.netStageS, c.tunerStageS});
    if (opt.pipelined) {
        c.predictedTotalS = c.storeStageS + c.netStageS + c.tunerStageS +
                            static_cast<double>(opt.nRun - 1) *
                                bottleneck;
    } else {
        c.predictedTotalS =
            static_cast<double>(opt.nRun) *
            (c.storeStageS + c.netStageS + c.tunerStageS);
    }
    return c;
}

PartitionChoice
findBestPoint(const ExperimentConfig &cfg, const TrainOptions &opt)
{
    const models::ModelSpec &m = *cfg.model;
    PartitionChoice best;
    best.predictedTotalS = std::numeric_limits<double>::infinity();
    for (size_t cut : m.partitionCuts()) {
        if (m.cutSplitsClassifier(cut))
            continue; // trainable layers stay on the Tuner
        PartitionChoice c = evaluateCut(cfg, opt, cut);
        if (c.predictedTotalS < best.predictedTotalS)
            best = c;
    }
    return best;
}

ApoResult
findBestOrganization(const ExperimentConfig &cfg, const TrainOptions &opt,
                     int max_stores)
{
    assert(max_stores >= 1);
    ApoResult result;
    double t_min = std::numeric_limits<double>::infinity();
    for (int n = 1; n <= max_stores; ++n) {
        ExperimentConfig c = cfg;
        c.nStores = n;
        PartitionChoice choice = findBestPoint(c, opt);
        double t_diff = std::abs(choice.storeStageS - choice.tunerStageS);
        result.sweep.push_back(ApoSweepPoint{n, choice, t_diff});
        if (t_diff < t_min) {
            t_min = t_diff;
            result.bestStores = n;
            result.bestChoice = choice;
        }
    }
    return result;
}

} // namespace ndp::core
