#include "core/apo.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/npe_common.h"
#include "models/throughput.h"
#include "net/estimate.h"
#include "storage/codec.h"

namespace ndp::core {

PartitionChoice
evaluateCut(const ExperimentConfig &cfg, const TrainOptions &opt,
            size_t cut)
{
    const models::ModelSpec &m = *cfg.model;
    PartitionChoice c;
    c.cut = cut;
    c.transferMBPerImage = m.transferMBAt(cut);

    double imgs_run = static_cast<double>(cfg.nImages) /
                      static_cast<double>(opt.nRun);

    // Store stage: the slowest of the 3-stage NPE pipeline, per image.
    // Steady-state stream rate: per-image seek is amortized away.
    double read_s = cfg.storeSpec.disk.streamReadSeconds(
                        m.inputMB() / kCompressionRatio * 1e6) -
                    cfg.storeSpec.disk.seekS;
    double dec_s = decompressSeconds(m.inputMB(),
                                     cfg.npe.decompressCores);
    double fe_s = models::feSecondsPerImage(*cfg.storeSpec.gpu, m, cut,
                                            opt.feBatch);
    double per_image_store = std::max({read_s, dec_s, fe_s});
    c.storeStageS =
        imgs_run * per_image_store / static_cast<double>(cfg.nStores);

    // Network stage: all stores funnel into the Tuner's ingress link;
    // the fabric is work-conserving, so the shared drain time equals
    // the aggregate bytes over the link rate (see net/estimate.h).
    c.netStageS = net::sharedIngressSeconds(
        imgs_run * c.transferMBPerImage * 1e6, cfg.networkGbps);

    // Tuner stage.
    double ingest = models::tunerIngestSecondsPerImage(
        *cfg.tunerSpec.gpu, m, cut, opt.feBatch);
    double epoch = models::tunerEpochSecondsPerImage(*cfg.tunerSpec.gpu,
                                                     m, opt.trainBatch);
    c.tunerStageS =
        imgs_run *
        (ingest + epoch * static_cast<double>(opt.tunerEpochs));

    double bottleneck =
        std::max({c.storeStageS, c.netStageS, c.tunerStageS});
    if (opt.pipelined) {
        c.predictedTotalS = c.storeStageS + c.netStageS + c.tunerStageS +
                            static_cast<double>(opt.nRun - 1) *
                                bottleneck;
    } else {
        c.predictedTotalS =
            static_cast<double>(opt.nRun) *
            (c.storeStageS + c.netStageS + c.tunerStageS);
    }
    return c;
}

PartitionChoice
findBestPoint(const ExperimentConfig &cfg, const TrainOptions &opt)
{
    const models::ModelSpec &m = *cfg.model;
    PartitionChoice best;
    best.predictedTotalS = std::numeric_limits<double>::infinity();
    for (size_t cut : m.partitionCuts()) {
        if (m.cutSplitsClassifier(cut))
            continue; // trainable layers stay on the Tuner
        PartitionChoice c = evaluateCut(cfg, opt, cut);
        if (c.predictedTotalS < best.predictedTotalS)
            best = c;
    }
    return best;
}

std::vector<ApoSweepPoint>
sweepOrganizations(const ExperimentConfig &cfg, const TrainOptions &opt,
                   int max_stores)
{
    assert(max_stores >= 1);
    std::vector<ApoSweepPoint> sweep;
    sweep.reserve(static_cast<size_t>(max_stores));
    for (int n = 1; n <= max_stores; ++n) {
        ExperimentConfig c = cfg;
        c.nStores = n;
        PartitionChoice choice = findBestPoint(c, opt);
        double t_diff = std::abs(choice.storeStageS - choice.tunerStageS);
        sweep.push_back(ApoSweepPoint{n, choice, t_diff});
    }
    return sweep;
}

ApoResult
selectBalanced(const std::vector<ApoSweepPoint> &sweep)
{
    ApoResult result;
    result.sweep = sweep;
    double t_min = std::numeric_limits<double>::infinity();
    for (const ApoSweepPoint &p : sweep) {
        if (p.tDiff < t_min) {
            t_min = p.tDiff;
            result.bestStores = p.nStores;
            result.bestChoice = p.choice;
        }
    }
    return result;
}

ApoResult
findBestOrganization(const ExperimentConfig &cfg, const TrainOptions &opt,
                     int max_stores)
{
    return selectBalanced(sweepOrganizations(cfg, opt, max_stores));
}

GlobalApoResult
planJobs(const ExperimentConfig &fleet,
         const std::vector<ApoJobSpec> &jobs, int fleet_stores)
{
    const int k = static_cast<int>(jobs.size());
    if (k == 0)
        throw std::invalid_argument("planJobs: no jobs");
    if (fleet_stores < k)
        throw std::invalid_argument(
            "planJobs: more jobs than PipeStores (every job needs at "
            "least one store)");

    // Per-job sweep tables: sweeps[j][s-1] is job j's best cut on s
    // stores. With K jobs, no job can hold more than N - (K-1).
    const int max_s = fleet_stores - (k - 1);
    std::vector<std::vector<ApoSweepPoint>> sweeps;
    sweeps.reserve(jobs.size());
    for (const ApoJobSpec &js : jobs) {
        ExperimentConfig c = fleet;
        c.model = js.model;
        c.nImages = js.nImages;
        sweeps.push_back(sweepOrganizations(c, js.train, max_s));
    }

    GlobalApoResult result;
    if (k == 1) {
        // Bit-exact reduction to Algorithm 1: one tenant keeps the
        // balance criterion (it may leave stores idle).
        ApoResult one = selectBalanced(sweeps.front());
        result.makespanS = one.bestChoice.predictedTotalS;
        result.jobs.push_back(
            ApoJobPlan{jobs.front().name, one.bestStores, 0,
                       one.bestChoice});
        return result;
    }

    // PipeDream-style DP over exact partitions: dp[j][n] = minimal
    // makespan placing the first j jobs on exactly n stores. Strict
    // `<` with ascending s makes ties deterministic (earlier jobs
    // keep fewer stores).
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> dp(
        static_cast<size_t>(k) + 1,
        std::vector<double>(static_cast<size_t>(fleet_stores) + 1,
                            inf));
    std::vector<std::vector<int>> pick(
        static_cast<size_t>(k) + 1,
        std::vector<int>(static_cast<size_t>(fleet_stores) + 1, 0));
    dp[0][0] = 0.0;
    for (int j = 1; j <= k; ++j) {
        const auto &tbl = sweeps[static_cast<size_t>(j - 1)];
        for (int n = j; n <= fleet_stores; ++n) {
            for (int s = 1; s <= std::min(max_s, n - (j - 1)); ++s) {
                double prev =
                    dp[static_cast<size_t>(j - 1)]
                      [static_cast<size_t>(n - s)];
                if (prev == inf)
                    continue;
                double t = std::max(
                    prev,
                    tbl[static_cast<size_t>(s - 1)]
                        .choice.predictedTotalS);
                if (t <
                    dp[static_cast<size_t>(j)][static_cast<size_t>(n)]) {
                    dp[static_cast<size_t>(j)][static_cast<size_t>(n)] =
                        t;
                    pick[static_cast<size_t>(j)]
                        [static_cast<size_t>(n)] = s;
                }
            }
        }
    }

    result.makespanS =
        dp[static_cast<size_t>(k)][static_cast<size_t>(fleet_stores)];
    std::vector<int> widths(static_cast<size_t>(k), 0);
    for (int j = k, n = fleet_stores; j >= 1; --j) {
        int s = pick[static_cast<size_t>(j)][static_cast<size_t>(n)];
        assert(s >= 1);
        widths[static_cast<size_t>(j - 1)] = s;
        n -= s;
    }
    int first = 0;
    for (int j = 0; j < k; ++j) {
        int s = widths[static_cast<size_t>(j)];
        result.jobs.push_back(ApoJobPlan{
            jobs[static_cast<size_t>(j)].name, s, first,
            sweeps[static_cast<size_t>(j)][static_cast<size_t>(s - 1)]
                .choice});
        first += s;
    }
    return result;
}

} // namespace ndp::core
