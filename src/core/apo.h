/**
 * @file
 * APO: Automated model Partitioning and Organization (§5.3).
 *
 * FindBestPoint() evaluates every clean partition point of a model
 * against the hardware (store FLOPS, Tuner FLOPS, network bandwidth)
 * and predicts per-run Store-stage / network / Tuner-stage times under
 * pipelined FT-DMP; the best point minimizes the predicted end-to-end
 * training time. findBestOrganization() is Algorithm 1: it sweeps the
 * PipeStore count and picks the one whose pipeline stages are most
 * balanced (minimal |T_ps - T_tuner|), i.e. no bubbles and no idle,
 * energy-wasting stores.
 *
 * Cuts that would place trainable layers on the stores are excluded,
 * exactly as the paper specifies ("to prevent weight synchronization
 * among the PipeStores, the trainable layer is assigned to the
 * Tuner").
 *
 * planJobs() generalizes Algorithm 1 to a multi-job fleet: given K
 * fine-tuning jobs and N PipeStores, it jointly chooses a (cut, store
 * count) per job — a PipeDream-style dynamic program over exact
 * partitions of the fleet that minimizes the cluster makespan
 * (max over jobs of the predicted training time). K = 1 reduces
 * bit-exactly to findBestOrganization().
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/training.h"

namespace ndp::core {

struct PartitionChoice
{
    size_t cut = 0;
    /** Per-run Store-stage time (read/decompress/FE, pipelined). */
    double storeStageS = 0.0;
    /** Per-run feature-transfer time on the shared ingress. */
    double netStageS = 0.0;
    /** Per-run Tuner-stage time (ingest + classifier epochs). */
    double tunerStageS = 0.0;
    /** Predicted wall time of the whole pipelined training. */
    double predictedTotalS = 0.0;
    /** Bytes per image crossing the wire at this cut. */
    double transferMBPerImage = 0.0;
};

struct ApoSweepPoint
{
    int nStores;
    PartitionChoice choice;
    /** |T_ps - T_tuner| — Algorithm 1's balance criterion. */
    double tDiff;
};

struct ApoResult
{
    int bestStores = 0;
    PartitionChoice bestChoice;
    std::vector<ApoSweepPoint> sweep;
};

/** Predicted stage times for one (cut, store count) combination. */
PartitionChoice evaluateCut(const ExperimentConfig &cfg,
                            const TrainOptions &opt, size_t cut);

/** FindBestPoint (§5.3): best cut for a fixed number of stores. */
PartitionChoice findBestPoint(const ExperimentConfig &cfg,
                              const TrainOptions &opt);

/** Best cut at every store count in [1, max_stores] (Algorithm 1's
 *  inner sweep, also the per-job table planJobs() optimizes over). */
std::vector<ApoSweepPoint> sweepOrganizations(const ExperimentConfig &cfg,
                                              const TrainOptions &opt,
                                              int max_stores);

/** Algorithm 1's selection rule: the sweep point with the most
 *  balanced stages (minimal |T_ps - T_tuner|; first wins ties). */
ApoResult selectBalanced(const std::vector<ApoSweepPoint> &sweep);

/** Algorithm 1: best number of PipeStores in [1, max_stores]. */
ApoResult findBestOrganization(const ExperimentConfig &cfg,
                               const TrainOptions &opt, int max_stores);

/** @name Global APO (multi-job)
 * @{ */

/** One fine-tuning job competing for the shared fleet. */
struct ApoJobSpec
{
    std::string name;
    const models::ModelSpec *model = &models::resnet50();
    uint64_t nImages = 200000;
    TrainOptions train;
};

/** Fleet placement planJobs() chose for one job: the contiguous
 *  store range [firstStore, firstStore + nStores) and the best cut
 *  at that width. */
struct ApoJobPlan
{
    std::string name;
    int nStores = 0;
    int firstStore = 0;
    PartitionChoice choice;
};

struct GlobalApoResult
{
    /** Predicted cluster makespan: max over jobs of predictedTotalS.
     *  (K = 1 keeps Algorithm 1's balance rule, so the single job's
     *  predicted time, not a makespan minimum.) */
    double makespanS = 0.0;
    /** Per-job placements, in submission order. */
    std::vector<ApoJobPlan> jobs;
};

/**
 * Global APO: jointly partition @p fleet_stores PipeStores among
 * @p jobs and pick each job's cut. @p fleet carries the shared
 * hardware (storeSpec / tunerSpec / networkGbps); each job overrides
 * model and nImages. K = 1 reduces bit-exactly to
 * findBestOrganization(cfg, opt, fleet_stores). K > 1 minimizes the
 * makespan over exact partitions (every job >= 1 store, all stores
 * used); ties break toward fewer stores for earlier jobs. Throws
 * std::invalid_argument when jobs is empty or K > fleet_stores.
 */
GlobalApoResult planJobs(const ExperimentConfig &fleet,
                         const std::vector<ApoJobSpec> &jobs,
                         int fleet_stores);

/** @} */

} // namespace ndp::core
