/**
 * @file
 * APO: Automated model Partitioning and Organization (§5.3).
 *
 * FindBestPoint() evaluates every clean partition point of a model
 * against the hardware (store FLOPS, Tuner FLOPS, network bandwidth)
 * and predicts per-run Store-stage / network / Tuner-stage times under
 * pipelined FT-DMP; the best point minimizes the predicted end-to-end
 * training time. findBestOrganization() is Algorithm 1: it sweeps the
 * PipeStore count and picks the one whose pipeline stages are most
 * balanced (minimal |T_ps - T_tuner|), i.e. no bubbles and no idle,
 * energy-wasting stores.
 *
 * Cuts that would place trainable layers on the stores are excluded,
 * exactly as the paper specifies ("to prevent weight synchronization
 * among the PipeStores, the trainable layer is assigned to the
 * Tuner").
 */

#pragma once

#include <cstddef>
#include <vector>

#include "core/config.h"
#include "core/training.h"

namespace ndp::core {

struct PartitionChoice
{
    size_t cut = 0;
    /** Per-run Store-stage time (read/decompress/FE, pipelined). */
    double storeStageS = 0.0;
    /** Per-run feature-transfer time on the shared ingress. */
    double netStageS = 0.0;
    /** Per-run Tuner-stage time (ingest + classifier epochs). */
    double tunerStageS = 0.0;
    /** Predicted wall time of the whole pipelined training. */
    double predictedTotalS = 0.0;
    /** Bytes per image crossing the wire at this cut. */
    double transferMBPerImage = 0.0;
};

struct ApoSweepPoint
{
    int nStores;
    PartitionChoice choice;
    /** |T_ps - T_tuner| — Algorithm 1's balance criterion. */
    double tDiff;
};

struct ApoResult
{
    int bestStores = 0;
    PartitionChoice bestChoice;
    std::vector<ApoSweepPoint> sweep;
};

/** Predicted stage times for one (cut, store count) combination. */
PartitionChoice evaluateCut(const ExperimentConfig &cfg,
                            const TrainOptions &opt, size_t cut);

/** FindBestPoint (§5.3): best cut for a fixed number of stores. */
PartitionChoice findBestPoint(const ExperimentConfig &cfg,
                              const TrainOptions &opt);

/** Algorithm 1: best number of PipeStores in [1, max_stores]. */
ApoResult findBestOrganization(const ExperimentConfig &cfg,
                               const TrainOptions &opt, int max_stores);

} // namespace ndp::core
