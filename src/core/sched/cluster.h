/**
 * @file
 * The multi-job cluster: one simulation, one shared fleet, many
 * job-scoped dataflows.
 *
 * A Cluster owns what NDPipe deploys once per photo-storage fleet —
 * the PipeStores (disk/CPU/GPU stations), the Tuner host (the GPU
 * every fine-tuning and serving job shares), the network fabric, and
 * the fault injector — and runs every submitted JobDesc against those
 * shared devices in a single discrete-event simulation. Each job gets
 * its *own* dataflow object (FtDmpDataflow, OfflineInferDataflow,
 * OnlineDataflow, MediaDataflow, SrvFineTuneDataflow) wired to its
 * store subset through the ports structs, plus:
 *
 *  - a scheduler account (core/sched/scheduler.h): priority, weighted
 *    fair share, preemption at batch boundaries;
 *  - a launcher coroutine that delays to submitAtS, registers with the
 *    scheduler, spawns the dataflow, and awaits its completion;
 *  - a per-job Perfetto track group ("<job>/store3", "<job>/tuner"…)
 *    via the ports' scope prefix, so ndptrace attributes contention
 *    per job.
 *
 * Store sets of concurrent jobs may overlap: overlapping jobs share
 * the stores' stations (their batches interleave in the device FIFO
 * queues) and the scheduler arbitrates GPU time between them; every
 * job also contends for the Tuner GPU and the fabric. Cluster::run()
 * returns per-job JobReports (makespan, waits, preemptions, serving
 * percentiles) plus the cluster roll-up.
 */

#pragma once

#include <memory>

#include "core/config.h"
#include "core/sched/job.h"

namespace ndp::core::sched {

class Cluster
{
  public:
    explicit Cluster(const ClusterSpec &spec);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /**
     * Validate and enqueue one job; returns its job id (index into
     * ClusterReport::jobs). Throws std::invalid_argument for
     * descriptions the fleet cannot place and std::runtime_error when
     * an offline-inference job's model cannot fit the store GPU at
     * the requested batch (models::checkMemory).
     */
    int submit(const JobDesc &job);

    /** Run all submitted jobs to completion (one Simulator::run). */
    ClusterReport run();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace ndp::core::sched
