/**
 * @file
 * Cluster scheduler: priorities, weighted fair shares, and preemption
 * at batch boundaries for multi-job runs on the shared fleet.
 *
 * The scheduler does not own devices and never moves work itself; it
 * decides *when a job's stage coroutines may start their next batch*.
 * Pipeline workers call `co_await sched->yield(jobId)` at each batch
 * boundary: if the job is runnable the awaiter completes synchronously
 * — no suspension, no event is scheduled, and two same-sim-time events
 * keep their exact FIFO order (the determinism contract of
 * sim/simulator.h). Only when the job is preempted does the coroutine
 * park, to be released by rebalance() when the decision flips.
 *
 * Policy, in decision order:
 *  1. Priority: a job parks while any *store-overlapping* active job
 *     of strictly higher priority is running. Jobs on disjoint store
 *     subsets never preempt each other (they share only the Tuner and
 *     fabric, which stay FIFO/max-min fair), so a medium-priority job
 *     on other stores cannot invert a high-priority job — preemption
 *     scope is exactly the contended devices.
 *  2. Weighted fair share among equal-priority overlapping jobs:
 *     per-job virtual time advances by chargedGpuSeconds / share
 *     (CFS-style), and a job parks once its vtime leads the minimum
 *     competitor vtime by more than one quantum. The minimum-vtime job
 *     is always runnable, so the policy cannot deadlock.
 *
 * GPU service seconds are the fair-share currency: the accelerator is
 * the dominant shared device of every NDPipe dataflow, and charging a
 * single resource keeps the accounting deterministic and cheap.
 *
 * Zero-cost rule: a null Scheduler pointer in PipelineSpec (or any
 * dataflow Ports struct) means no yield() is awaited and no charge()
 * is made — the event sequence is byte-identical to a single-tenant
 * run, which tests/test_sched.cc pins bit-for-bit.
 */

#pragma once

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace ndp::core::sched {

class Scheduler
{
  public:
    /** @p quantum_s: fair-share lag bound in virtual seconds. */
    explicit Scheduler(sim::Simulator &s, double quantum_s = 5.0)
        : sim_(s), quantumS_(quantum_s)
    {}

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Register a job before the simulation starts. @p stores are the
     * fleet store indices the job occupies (empty = no store overlap
     * with anyone, e.g. online serving on the Tuner host): preemption
     * is scoped to jobs whose store sets intersect. @return job id.
     */
    int add(std::string name, int priority, double share,
            std::vector<int> stores);

    /** The job began running (its launcher reached submit time). */
    void started(int id);

    /** The job completed; releases parked competitors. */
    void finished(int id);

    /**
     * Charge @p service_s GPU seconds to the job and advance its
     * virtual time by service_s / share (with a CFS-style lag clamp
     * so a job idle on its own stages cannot bank unbounded credit),
     * then release any parked job the new ordering makes runnable.
     */
    void charge(int id, double service_s);

    /**
     * Preemption decision for the job's next batch. True when the job
     * may proceed: not yet started/already done (monitors drain), no
     * overlapping strictly-higher-priority active job, and within one
     * quantum of the minimum competitor virtual time.
     */
    bool runnable(int id) const;

    /**
     * Batch-boundary yield point. await_ready() returns runnable(id):
     * the runnable path never suspends and never touches the event
     * queue, so it cannot reorder same-sim-time events.
     */
    struct YieldAwaiter
    {
        Scheduler &sched;
        int id;

        bool await_ready() const noexcept { return sched.runnable(id); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sched.park(id, h);
        }

        void await_resume() const noexcept {}
    };

    YieldAwaiter yield(int id) { return YieldAwaiter{*this, id}; }

    double quantumS() const { return quantumS_; }
    int jobCount() const { return static_cast<int>(jobs_.size()); }
    const std::string &name(int id) const;

    /** @name Per-job accounting (valid any time; final after run)
     * @{ */
    /** Batch boundaries at which the job was actually parked. */
    uint64_t preemptions(int id) const;
    /** Total sim seconds the job's coroutines spent parked. */
    double waitS(int id) const;
    /** GPU service seconds charged to the job. */
    double chargedS(int id) const;
    /** Virtual time (chargedS weighted by 1/share, lag-clamped). */
    double vtime(int id) const;
    /** @} */

    /** Coroutines currently parked (all jobs). */
    int parkedCount() const { return static_cast<int>(parked_.size()); }

  private:
    struct JobState
    {
        std::string name;
        int priority = 0;
        double share = 1.0;
        /** Sorted fleet store indices (overlap via merge scan). */
        std::vector<int> stores;
        bool active = false;
        bool done = false;
        double vtime = 0.0;
        double chargedS = 0.0;
        uint64_t preemptions = 0;
        double waitS = 0.0;
    };

    struct Parked
    {
        int job = 0;
        std::coroutine_handle<> h;
        double sinceS = 0.0;
    };

    /** Park a preempted coroutine (YieldAwaiter::await_suspend). */
    void park(int id, std::coroutine_handle<> h);

    /** Release every parked coroutine whose job became runnable, in
     *  park (FIFO) order, via scheduleHandle(0, h). */
    void rebalance();

    static bool overlaps(const JobState &a, const JobState &b);

    /** Minimum vtime over active equal-priority overlapping
     *  competitors of @p j, excluding @p j itself; +inf if none. */
    double minCompetitorV(const JobState &j) const;

    sim::Simulator &sim_;
    double quantumS_;
    std::vector<JobState> jobs_;
    std::vector<Parked> parked_;
};

} // namespace ndp::core::sched
