#include "core/sched/scheduler.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace ndp::core::sched {

int
Scheduler::add(std::string name, int priority, double share,
               std::vector<int> stores)
{
    if (share <= 0.0)
        throw std::invalid_argument("sched: share must be positive");
    std::sort(stores.begin(), stores.end());
    stores.erase(std::unique(stores.begin(), stores.end()),
                 stores.end());
    JobState j;
    j.name = std::move(name);
    j.priority = priority;
    j.share = share;
    j.stores = std::move(stores);
    jobs_.push_back(std::move(j));
    return static_cast<int>(jobs_.size()) - 1;
}

const std::string &
Scheduler::name(int id) const
{
    return jobs_.at(static_cast<size_t>(id)).name;
}

uint64_t
Scheduler::preemptions(int id) const
{
    return jobs_.at(static_cast<size_t>(id)).preemptions;
}

double
Scheduler::waitS(int id) const
{
    return jobs_.at(static_cast<size_t>(id)).waitS;
}

double
Scheduler::chargedS(int id) const
{
    return jobs_.at(static_cast<size_t>(id)).chargedS;
}

double
Scheduler::vtime(int id) const
{
    return jobs_.at(static_cast<size_t>(id)).vtime;
}

bool
Scheduler::overlaps(const JobState &a, const JobState &b)
{
    // Sorted-unique merge scan; empty sets never overlap.
    auto ia = a.stores.begin();
    auto ib = b.stores.begin();
    while (ia != a.stores.end() && ib != b.stores.end()) {
        if (*ia < *ib)
            ++ia;
        else if (*ib < *ia)
            ++ib;
        else
            return true;
    }
    return false;
}

double
Scheduler::minCompetitorV(const JobState &j) const
{
    double min_v = std::numeric_limits<double>::infinity();
    for (const JobState &o : jobs_) {
        if (&o == &j || !o.active || o.done)
            continue;
        if (o.priority != j.priority || !overlaps(j, o))
            continue;
        min_v = std::min(min_v, o.vtime);
    }
    return min_v;
}

void
Scheduler::started(int id)
{
    JobState &j = jobs_.at(static_cast<size_t>(id));
    j.active = true;
    // CFS newcomer rule: a late-submitted job starts at the pack's
    // current virtual time rather than banking credit since t=0.
    double min_v = minCompetitorV(j);
    if (min_v != std::numeric_limits<double>::infinity())
        j.vtime = std::max(j.vtime, min_v);
}

void
Scheduler::finished(int id)
{
    JobState &j = jobs_.at(static_cast<size_t>(id));
    j.active = false;
    j.done = true;
    rebalance();
}

void
Scheduler::charge(int id, double service_s)
{
    if (id < 0 || static_cast<size_t>(id) >= jobs_.size())
        return;
    JobState &j = jobs_[static_cast<size_t>(id)];
    j.chargedS += service_s;
    // Lag clamp: a job whose own stages sat idle (e.g. waiting on the
    // fabric) may trail the pack arbitrarily; cap the deficit to one
    // quantum so it cannot later monopolize the devices.
    double min_v = minCompetitorV(j);
    if (min_v != std::numeric_limits<double>::infinity())
        j.vtime = std::max(j.vtime, min_v - quantumS_);
    j.vtime += service_s / j.share;
    rebalance();
}

bool
Scheduler::runnable(int id) const
{
    if (id < 0 || static_cast<size_t>(id) >= jobs_.size())
        return true;
    const JobState &j = jobs_[static_cast<size_t>(id)];
    if (!j.active || j.done)
        return true;
    for (const JobState &o : jobs_) {
        if (&o == &j || !o.active || o.done)
            continue;
        if (o.priority > j.priority && overlaps(j, o))
            return false;
    }
    double min_v = std::min(j.vtime, minCompetitorV(j));
    return j.vtime <= min_v + quantumS_;
}

void
Scheduler::park(int id, std::coroutine_handle<> h)
{
    JobState &j = jobs_.at(static_cast<size_t>(id));
    ++j.preemptions;
    parked_.push_back(Parked{id, h, sim_.now()});
}

void
Scheduler::rebalance()
{
    // One pass in park (FIFO) order; released coroutines resume via
    // zero-delay events so they interleave with already-queued work in
    // deterministic (time, seq) order instead of running inline here.
    size_t kept = 0;
    for (size_t i = 0; i < parked_.size(); ++i) {
        Parked &p = parked_[i];
        if (runnable(p.job)) {
            JobState &j = jobs_[static_cast<size_t>(p.job)];
            j.waitS += sim_.now() - p.sinceS;
            sim_.scheduleHandle(0.0, p.h);
        } else {
            parked_[kept++] = p;
        }
    }
    parked_.resize(kept);
}

} // namespace ndp::core::sched
