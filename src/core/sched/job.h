/**
 * @file
 * The multi-job model: what a schedulable job *is* (JobDesc), what a
 * finished job reports (JobReport), and what a whole cluster run rolls
 * up to (ClusterReport).
 *
 * A JobDesc names one dataflow — FT-DMP fine-tuning, offline
 * inference, online serving, SRV fine-tuning, or media analysis — plus
 * its placement (which fleet stores it owns), its scheduling class
 * (priority, weighted share), and its submit time. The Cluster turns
 * each accepted JobDesc into a job-scoped dataflow over the *shared*
 * fleet devices and runs them all in one simulation; see
 * core/sched/cluster.h.
 *
 * Placement semantics: `stores` lists the fleet store indices the job
 * runs on. Store sets MAY overlap — overlapping jobs contend for the
 * shared disk/CPU/GPU stations (device FIFO queues interleave their
 * batches) and the scheduler arbitrates GPU time between them by
 * priority and weighted share; jobs with disjoint store sets never
 * preempt each other. Every job additionally shares the Tuner (its
 * GPU) and the network fabric. An online-serving job runs on the
 * Tuner host and has an empty store set.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/georep/georep.h"
#include "core/media.h"
#include "core/report.h"
#include "obs/monitor.h"
#include "core/serve/serve.h"
#include "core/training.h"

namespace ndp::core::sched {

enum class JobKind
{
    /** FT-DMP fine-tuning across the job's stores + the Tuner. */
    FtDmpTrain,
    /** NPE offline inference across the job's stores. */
    OfflineInfer,
    /** Poisson upload serving on the Tuner host (no stores). */
    OnlineServe,
    /** Open-loop million-user serving across the job's stores: the
     *  front-end LoadBalancer + AdmissionController of core/serve. */
    OpenLoopServe,
    /** Centralized SRV fine-tuning: the job's stores stream binaries
     *  to the Tuner host, which extracts and trains. */
    SrvFineTune,
    /** §7.1 media analysis across the job's stores. */
    Media,
    /** WAN geo-replication of model deltas: central fine-tuning on
     *  the Tuner, versioned pushes to the cluster's WAN sites
     *  (core/georep; requires ClusterSpec::wanSites). */
    GeoReplicate,
};

const char *jobKindName(JobKind k);

struct JobDesc
{
    std::string name;
    JobKind kind = JobKind::FtDmpTrain;

    /** @name Scheduling class
     * Strictly higher priority preempts store-overlapping jobs;
     * equal-priority overlapping jobs split GPU time by `share`
     * (see core/sched/scheduler.h).
     * @{ */
    int priority = 0;
    double share = 1.0;
    /** @} */

    /** Sim time the job enters the cluster. */
    double submitAtS = 0.0;

    /** Fleet store indices this job owns (empty for OnlineServe). */
    std::vector<int> stores;

    const models::ModelSpec *model = &models::resnet50();
    uint64_t nImages = 200000;
    NpeOptions npe;
    /** FtDmpTrain / SrvFineTune options. */
    TrainOptions train;

    /** @name OnlineServe
     * @{ */
    double arrivalsPerSec = 60.0;
    uint64_t nUploads = 20000;
    uint64_t seed = 11;
    /** @} */

    /** OpenLoopServe jobs only (fleet fields are overridden by the
     *  cluster's own spec). */
    serve::ServeConfig serve;

    /** Media jobs only. */
    MediaProfile media = photoMedia();

    /** GeoReplicate jobs only (the cluster supplies the WAN fleet). */
    georep::GeoRepOptions georep;

    /**
     * Reject descriptions the cluster cannot place: out-of-range or
     * duplicate store indices, an empty store set for a store-bound
     * kind (or a non-empty one for OnlineServe), and FT-DMP cuts that
     * put trainable layers on the stores — the "+FC" configuration
     * needs a fleet-wide all-reduce barrier, which only a
     * single-tenant run can own.
     */
    ValidationResult validate(int fleet_stores) const;
};

/** What one job did, assembled by Cluster::run(). */
struct JobReport
{
    std::string name;
    JobKind kind = JobKind::FtDmpTrain;
    int priority = 0;
    double share = 1.0;
    std::vector<int> stores;

    double submitAtS = 0.0;
    /** Sim time the job's dataflow actually started. */
    double startS = 0.0;
    double endS = 0.0;
    /** endS - startS. */
    double makespanS = 0.0;

    /** @name Scheduler accounting (zero when scheduling is off)
     * @{ */
    uint64_t preemptions = 0;
    /** Sim seconds the job's stage coroutines spent parked. */
    double waitS = 0.0;
    /** GPU service seconds charged to the job. */
    double chargedGpuS = 0.0;
    /** @} */

    /** Summed stage metrics of the job's pipelines. */
    StageMetrics stages;

    /** @name OnlineServe / OpenLoopServe only
     * @{ */
    uint64_t uploads = 0;
    double throughput = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
    bool saturated = false;
    /** @} */

    /** @name OpenLoopServe only (the offered-vs-goodput ledger)
     * @{ */
    double p999Ms = 0.0;
    uint64_t offered = 0;
    uint64_t goodput = 0;
    uint64_t shed = 0;
    uint64_t redispatched = 0;
    uint64_t abandoned = 0;
    int peakQueueDepth = 0;
    /** @} */

    /** Per-job health roll-up from the streaming monitor: alerts
     *  fired, error budget consumed, time in violation. All-zero when
     *  monitoring is off (obs::HealthMonitor::current() == nullptr) or
     *  the job's dataflow emits no health observations. */
    obs::HealthSummary health;

    /** @name GeoReplicate only (see georep::GeoRepReport)
     * @{ */
    int publishedVersions = 0;
    int minSiteVersion = 0;
    double geoWanBytes = 0.0;
    uint64_t geoRetransmits = 0;
    uint64_t geoCheckpointFallbacks = 0;
    double stalenessP95S = 0.0;
    double stalenessMaxS = 0.0;
    /** @} */
};

/** One multi-job cluster run. */
struct ClusterReport
{
    /** End of the last job (the whole simulation's makespan). */
    double seconds = 0.0;
    /** Simulator events processed (determinism fingerprint). */
    uint64_t events = 0;
    /** One entry per submitted job, in submit order. */
    std::vector<JobReport> jobs;
    /** Fabric roll-up across every job's transfers. */
    net::NetReport net;
    /** Fault roll-up (armed only for full-fleet jobs). */
    sim::FaultReport faults;
};

} // namespace ndp::core::sched
