#include "core/sched/cluster.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/georep/georep.h"
#include "core/inference.h"
#include "core/media.h"
#include "core/npe_common.h"
#include "core/online.h"
#include "core/pipeline.h"
#include "core/sched/scheduler.h"
#include "core/serve/serve.h"
#include "core/training.h"
#include "hw/devices.h"
#include "models/throughput.h"
#include "net/fabric.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "sim/wait_group.h"

namespace ndp::core::sched {

const char *
jobKindName(JobKind k)
{
    switch (k) {
      case JobKind::FtDmpTrain:
        return "ft-dmp";
      case JobKind::OfflineInfer:
        return "offline";
      case JobKind::OnlineServe:
        return "online";
      case JobKind::OpenLoopServe:
        return "serve";
      case JobKind::SrvFineTune:
        return "srv-ft";
      case JobKind::Media:
        return "media";
      case JobKind::GeoReplicate:
        return "georep";
    }
    return "?";
}

ValidationResult
JobDesc::validate(int fleet_stores) const
{
    if (name.empty())
        return ValidationResult("JobDesc: name must be non-empty");
    if (share <= 0.0)
        return ValidationResult("JobDesc: share must be > 0");
    if (submitAtS < 0.0)
        return ValidationResult("JobDesc: submitAtS must be >= 0");
    if (kind == JobKind::OnlineServe) {
        if (!stores.empty())
            return ValidationResult(
                "JobDesc: OnlineServe runs on the Tuner host and "
                "must not own stores");
        if (arrivalsPerSec <= 0.0)
            return ValidationResult(
                "JobDesc: arrivalsPerSec must be > 0");
        if (nUploads == 0)
            return ValidationResult("JobDesc: nUploads must be >= 1");
    } else if (kind == JobKind::GeoReplicate) {
        if (!stores.empty())
            return ValidationResult(
                "JobDesc: GeoReplicate runs on the Tuner host and "
                "the WAN sites; it must not own stores");
        if (auto r = georep.validate(); !r)
            return r;
    } else {
        if (stores.empty())
            return ValidationResult(
                "JobDesc: store-bound job needs a non-empty store "
                "set");
        std::vector<int> sorted = stores;
        std::sort(sorted.begin(), sorted.end());
        if (sorted.front() < 0 || sorted.back() >= fleet_stores)
            return ValidationResult(
                "JobDesc: store index out of fleet range");
        if (std::adjacent_find(sorted.begin(), sorted.end()) !=
            sorted.end())
            return ValidationResult(
                "JobDesc: duplicate store index");
    }
    if (kind == JobKind::FtDmpTrain) {
        if (auto r = train.validate(); !r)
            return r;
        // "+FC" cuts (trainable layers on the stores) need the
        // fleet-wide all-reduce barrier of the single-tenant entry
        // point; a store-subset job cannot own one.
        if (model->cutSplitsClassifier(train.resolveCut(*model)))
            return ValidationResult(
                "JobDesc: FT-DMP cut places trainable layers on the "
                "stores (+FC); multi-job runs require cut <= "
                "classifierStart");
    }
    if (kind == JobKind::OpenLoopServe) {
        // Fleet fields (nStores/storeSpec/faults) are overridden by
        // the cluster at submit; only policy fields matter here.
        if (auto r = serve.validate(); !r)
            return r;
    }
    if (kind != JobKind::OnlineServe &&
        kind != JobKind::OpenLoopServe &&
        kind != JobKind::GeoReplicate && nImages == 0)
        return ValidationResult("JobDesc: nImages must be >= 1");
    return {};
}

namespace {

/** One submitted job's runtime state inside the cluster. */
struct JobRun
{
    JobDesc desc;
    /** Scheduler account (== index in ClusterReport::jobs). */
    int schedId = -1;
    /** Job-scoped view of the shared fleet. */
    ExperimentConfig cfg;
    OnlineConfig ocfg;
    /** Signalled once by the dataflow's completion monitor. */
    std::unique_ptr<sim::WaitGroup> done;
    double startS = 0.0;
    double endS = 0.0;
    /** Exactly one dataflow is non-null, per desc.kind. */
    std::unique_ptr<FtDmpDataflow> ft;
    std::unique_ptr<OfflineInferDataflow> offline;
    std::unique_ptr<OnlineDataflow> online;
    std::unique_ptr<serve::ServeDataflow> serveFlow;
    std::unique_ptr<SrvFineTuneDataflow> srv;
    std::unique_ptr<MediaDataflow> media;
    std::unique_ptr<georep::GeoRepDataflow> georep;
    /** OnlineServe: per-job preprocessing pool on the Tuner host. */
    std::unique_ptr<hw::CpuPool> onlineCpu;
    /** Per-job lifecycle track ("<job>/job"). */
    int trkJob = 0;
};

} // namespace

struct Cluster::Impl
{
    /**
     * A single-region fleet (no wanSites) is the exact pre-topology
     * hub: no trunks, bit-identical link layout and float sequence.
     * Declaring WAN sites puts the whole fleet in rack 0 of a home
     * site (intra-rack flows keep their {uplink, downlink} paths) and
     * adds one rack per remote region behind its WAN trunk.
     */
    static net::Topology
    makeTopology(const ClusterSpec &spec)
    {
        if (spec.wanSites.empty())
            return net::Topology::hub();
        net::Topology topo;
        const net::SiteId home = topo.addSite("home");
        double wan_sum = 0.0;
        for (const WanSite &w : spec.wanSites)
            wan_sum += w.gbps;
        // The home uplink only carries WAN-bound traffic; keep it
        // generous so the WAN trunks stay the bottleneck.
        topo.addRack(home, std::max(100.0, 2.0 * wan_sum));
        for (const WanSite &w : spec.wanSites) {
            const net::SiteId sid = topo.addSite(w.name);
            topo.addRack(sid, std::max(25.0, 2.0 * w.gbps));
            topo.addWanLink(home, sid, w.gbps, w.latencyS);
        }
        return topo;
    }

    explicit Impl(const ClusterSpec &cluster_spec)
        : spec(cluster_spec), trace(obs::Tracer::current()),
          gauges(trace), fabric(s, makeTopology(cluster_spec)),
          tunerGpu(s, *spec.tunerSpec.gpu, spec.tunerSpec.nGpus),
          tunerCpu(s, spec.tunerSpec.cpu.vcpus),
          injector(s, spec.faults, spec.nStores)
    {
        spec.validate().orThrow();
        // Topology: the fleet's stores, then the Tuner host (the
        // shared ingress funnel), a front-end node labels and media
        // results return to, and an aggregate client node uploads
        // arrive from. With WAN sites declared, one replica node per
        // remote region follows (in its own rack), keeping every
        // pre-existing node id unchanged.
        for (int i = 0; i < spec.nStores; ++i)
            storeNodes.push_back(fabric.addNode(spec.storeSpec.nic));
        tunerNode = fabric.addNode(spec.nic());
        fabric.setIngress(tunerNode);
        frontNode = fabric.addNode(spec.nic());
        clientNode = fabric.addNode(spec.tunerSpec.nic);
        for (size_t w = 0; w < spec.wanSites.size(); ++w)
            siteNodes.push_back(fabric.addNode(
                spec.storeSpec.nic,
                static_cast<net::RackId>(1 + w)));
        fabric.setTracer(trace);
        faults = injector.armed() ? &injector : nullptr;
        fabric.attachFaults(faults);
        monitor = obs::HealthMonitor::current();
        injector.attachObserver(monitor);
        for (int i = 0; i < spec.nStores; ++i)
            stations.push_back(
                std::make_unique<StoreStations>(s, spec.storeSpec));
        if (spec.scheduling)
            sched = std::make_unique<Scheduler>(s, spec.quantumS);
        if (trace) {
            gauges.add("tuner", "util.gpu",
                       [g = &tunerGpu] { return g->utilization(); });
            gauges.add("net", "ingress.util", [f = &fabric] {
                return f->downlinkUtilization(f->ingress());
            });
        }
    }

    /** True when @p d owns every fleet store (the only placement the
     *  fleet-indexed fault plan is armed for). */
    bool
    fullFleet(const JobDesc &d) const
    {
        if (static_cast<int>(d.stores.size()) != spec.nStores)
            return false;
        std::vector<int> sorted = d.stores;
        std::sort(sorted.begin(), sorted.end());
        for (int i = 0; i < spec.nStores; ++i)
            if (sorted[static_cast<size_t>(i)] != i)
                return false;
        return true;
    }

    static void buildDataflow(Impl &im, JobRun &jr);
    static sim::Task jobLauncher(Impl &im, JobRun &jr);

    ClusterSpec spec;
    sim::Simulator s;
    obs::Tracer *trace = nullptr;
    obs::GaugeSet gauges;
    net::NetFabric fabric;
    std::vector<net::NodeId> storeNodes;
    net::NodeId tunerNode = net::kNoNode;
    net::NodeId frontNode = net::kNoNode;
    net::NodeId clientNode = net::kNoNode;
    /** One replica node per ClusterSpec::wanSites entry. */
    std::vector<net::NodeId> siteNodes;
    hw::GpuExec tunerGpu;
    hw::CpuPool tunerCpu;
    sim::FaultInjector injector;
    sim::FaultInjector *faults = nullptr;
    /** Session health monitor; null when monitoring is off. */
    obs::HealthMonitor *monitor = nullptr;
    std::vector<std::unique_ptr<StoreStations>> stations;
    std::unique_ptr<Scheduler> sched;
    std::vector<std::unique_ptr<JobRun>> jobs;
    bool ran = false;
};

namespace {

/** Job-scoped view of the shared fleet for one store-bound job. */
ExperimentConfig
jobConfig(const ClusterSpec &spec, const JobDesc &d)
{
    ExperimentConfig cfg;
    cfg.model = d.model;
    cfg.nStores = static_cast<int>(d.stores.size());
    cfg.networkGbps = spec.networkGbps;
    cfg.storeSpec = spec.storeSpec;
    cfg.tunerSpec = spec.tunerSpec;
    // SRV-style jobs run on the Tuner host and stream from the job's
    // store disks.
    cfg.hostSpec = spec.tunerSpec;
    cfg.srvStorageServers = std::max<int>(
        1, static_cast<int>(d.stores.size()));
    cfg.srvStoreSpec = spec.storeSpec;
    cfg.nImages = d.nImages;
    cfg.npe = d.npe;
    return cfg;
}

} // namespace

/** Construct and spawn the job's dataflow (called from the launcher
 * at its submit time, so trace scopes and devices resolve lazily). */
void
Cluster::Impl::buildDataflow(Impl &im, JobRun &jr)
{
    const JobDesc &d = jr.desc;
    sim::FaultInjector *jf =
        im.fullFleet(d) && d.kind != JobKind::SrvFineTune ? im.faults
                                                          : nullptr;
    switch (d.kind) {
      case JobKind::FtDmpTrain: {
        FtDmpPorts p;
        p.fabric = &im.fabric;
        for (int sidx : d.stores) {
            p.storeNodes.push_back(
                im.storeNodes[static_cast<size_t>(sidx)]);
            p.stores.push_back(
                im.stations[static_cast<size_t>(sidx)].get());
            p.fleetIdx.push_back(sidx);
        }
        p.tunerNode = im.tunerNode;
        p.tunerGpu = &im.tunerGpu;
        p.faults = jf;
        p.trace = im.trace;
        p.scope = d.name;
        p.sched = im.sched.get();
        p.jobId = jr.schedId;
        p.jobDone = jr.done.get();
        jr.ft = std::make_unique<FtDmpDataflow>(im.s, jr.cfg, d.train,
                                                p);
        jr.ft->spawn();
        break;
      }
      case JobKind::OfflineInfer: {
        OfflineInferPorts p;
        p.fabric = &im.fabric;
        for (int sidx : d.stores) {
            p.storeNodes.push_back(
                im.storeNodes[static_cast<size_t>(sidx)]);
            p.stores.push_back(
                im.stations[static_cast<size_t>(sidx)].get());
            p.fleetIdx.push_back(sidx);
        }
        p.indexNode = im.frontNode;
        p.faults = jf;
        p.trace = im.trace;
        p.scope = d.name;
        p.sched = im.sched.get();
        p.jobId = jr.schedId;
        p.jobDone = jr.done.get();
        jr.offline = std::make_unique<OfflineInferDataflow>(
            im.s, jr.cfg, p);
        jr.offline->spawn();
        break;
      }
      case JobKind::OnlineServe: {
        jr.onlineCpu = std::make_unique<hw::CpuPool>(
            im.s, jr.ocfg.preprocessCores);
        OnlinePorts p;
        p.fabric = &im.fabric;
        p.clientNode = im.clientNode;
        p.serverNode = im.tunerNode;
        p.cpu = jr.onlineCpu.get();
        p.gpu = &im.tunerGpu;
        p.faults = nullptr;
        p.trace = im.trace;
        p.scope = d.name;
        p.sched = im.sched.get();
        p.jobId = jr.schedId;
        p.jobDone = jr.done.get();
        jr.online = std::make_unique<OnlineDataflow>(im.s, jr.ocfg, p);
        jr.online->spawn();
        break;
      }
      case JobKind::OpenLoopServe: {
        serve::ServePorts p;
        p.fabric = &im.fabric;
        p.clientNode = im.clientNode;
        for (int sidx : d.stores) {
            p.storeNodes.push_back(
                im.storeNodes[static_cast<size_t>(sidx)]);
            p.stores.push_back(
                im.stations[static_cast<size_t>(sidx)].get());
            p.fleetIdx.push_back(sidx);
        }
        p.faults = jf;
        p.trace = im.trace;
        p.monitor = im.monitor;
        p.scope = d.name;
        p.sched = im.sched.get();
        p.jobId = jr.schedId;
        p.jobDone = jr.done.get();
        jr.serveFlow = std::make_unique<serve::ServeDataflow>(
            im.s, d.serve, p);
        jr.serveFlow->spawn();
        break;
      }
      case JobKind::SrvFineTune: {
        SrvFineTunePorts p;
        p.fabric = &im.fabric;
        for (int sidx : d.stores) {
            p.srvNodes.push_back(
                im.storeNodes[static_cast<size_t>(sidx)]);
            p.disks.push_back(
                &im.stations[static_cast<size_t>(sidx)]->disk);
        }
        p.hostNode = im.tunerNode;
        p.gpus = &im.tunerGpu;
        p.cpu = &im.tunerCpu;
        p.faults = nullptr;
        p.trace = im.trace;
        p.scope = d.name;
        p.sched = im.sched.get();
        p.jobId = jr.schedId;
        p.jobDone = jr.done.get();
        jr.srv = std::make_unique<SrvFineTuneDataflow>(
            im.s, jr.cfg, SrvVariant::Compressed, d.train.tunerEpochs,
            d.train.pipelined, p);
        jr.srv->spawn();
        break;
      }
      case JobKind::Media: {
        MediaPorts p;
        p.fabric = &im.fabric;
        for (int sidx : d.stores) {
            p.storeNodes.push_back(
                im.storeNodes[static_cast<size_t>(sidx)]);
            p.stores.push_back(
                im.stations[static_cast<size_t>(sidx)].get());
            p.fleetIdx.push_back(sidx);
        }
        p.sinkNode = im.frontNode;
        p.trace = im.trace;
        p.scope = d.name;
        p.sched = im.sched.get();
        p.jobId = jr.schedId;
        p.jobDone = jr.done.get();
        jr.media = std::make_unique<MediaDataflow>(
            im.s, jr.cfg, d.media, d.nImages, p);
        jr.media->spawn();
        break;
      }
      case JobKind::GeoReplicate: {
        georep::GeoRepPorts p;
        p.fabric = &im.fabric;
        p.homeNode = im.tunerNode;
        p.siteNodes = im.siteNodes;
        for (const WanSite &w : im.spec.wanSites)
            p.siteNames.push_back(w.name);
        p.gpu = &im.tunerGpu;
        p.trace = im.trace;
        p.monitor = im.monitor;
        p.scope = d.name;
        p.sched = im.sched.get();
        p.jobId = jr.schedId;
        p.jobDone = jr.done.get();
        jr.georep = std::make_unique<georep::GeoRepDataflow>(
            im.s, d.georep, p);
        jr.georep->spawn();
        break;
      }
    }
}

/** Per-job lifecycle: delay to the submit time, register with the
 * scheduler, build + spawn the dataflow, await its drain.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents (the
 * Impl and its JobRuns) outlive s.run(), which joins this task)
 */
// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::Task
Cluster::Impl::jobLauncher(Impl &im, JobRun &jr)
{
    co_await im.s.delay(jr.desc.submitAtS);
    jr.startS = im.s.now();
    if (im.trace)
        im.trace->instant(jr.trkJob, obs::Cat::Service, "start",
                          im.s.now(),
                          {{"priority",
                            static_cast<double>(jr.desc.priority)},
                           {"share", jr.desc.share}});
    if (im.sched)
        im.sched->started(jr.schedId);
    jr.done->add(1);
    buildDataflow(im, jr);
    co_await jr.done->wait();
    jr.endS = im.s.now();
    if (im.sched)
        im.sched->finished(jr.schedId);
    if (im.trace)
        im.trace->instant(jr.trkJob, obs::Cat::Service, "end",
                          im.s.now(),
                          {{"makespan", jr.endS - jr.startS}});
}

Cluster::Cluster(const ClusterSpec &spec)
    : impl_(std::make_unique<Impl>(spec))
{}

Cluster::~Cluster() = default;

int
Cluster::submit(const JobDesc &job)
{
    Impl &im = *impl_;
    if (im.ran)
        throw std::logic_error("Cluster: submit after run()");
    job.validate(im.spec.nStores).orThrow();
    if (job.kind == JobKind::OfflineInfer) {
        if (auto mem = models::checkMemory(*im.spec.storeSpec.gpu,
                                           *job.model,
                                           job.npe.batchSize);
            !mem) {
            throw std::runtime_error(
                "Cluster: job '" + job.name + "' needs " +
                std::to_string(mem.neededGiB) +
                " GiB GPU memory on the store GPU; model/batch does "
                "not fit");
        }
    }
    if (job.kind == JobKind::GeoReplicate && im.spec.wanSites.empty())
        throw std::invalid_argument(
            "Cluster: job '" + job.name +
            "' needs WAN sites; declare ClusterSpec::wanSites");
    auto jr = std::make_unique<JobRun>();
    jr->desc = job;
    jr->done = std::make_unique<sim::WaitGroup>(im.s);
    if (job.kind == JobKind::OnlineServe) {
        jr->ocfg.arrivalsPerSec = job.arrivalsPerSec;
        jr->ocfg.nUploads = job.nUploads;
        jr->ocfg.server = im.spec.tunerSpec;
        jr->ocfg.model = job.model;
        jr->ocfg.seed = job.seed;
    } else if (job.kind == JobKind::GeoReplicate) {
        // Runs against the shared Tuner GPU and the WAN topology; no
        // job-scoped store view to derive.
    } else if (job.kind == JobKind::OpenLoopServe) {
        // The cluster owns the fleet: override the ServeConfig's
        // standalone fleet fields with the shared one so service-time
        // estimates match the devices the job actually runs on.
        jr->desc.serve.nStores = static_cast<int>(job.stores.size());
        jr->desc.serve.storeSpec = im.spec.storeSpec;
        jr->desc.serve.model = job.model;
        jr->desc.serve.faults = {};
    } else {
        jr->cfg = jobConfig(im.spec, job);
    }
    if (im.sched)
        jr->schedId = im.sched->add(job.name, job.priority, job.share,
                                    job.stores);
    else
        jr->schedId = static_cast<int>(im.jobs.size());
    if (im.trace)
        jr->trkJob = im.trace->track(
            obs::scopedNode(job.name, "job"), "lifecycle");
    im.jobs.push_back(std::move(jr));
    return static_cast<int>(im.jobs.size()) - 1;
}

ClusterReport
Cluster::run()
{
    Impl &im = *impl_;
    if (im.ran)
        throw std::logic_error("Cluster: run() called twice");
    im.ran = true;

    for (auto &jr : im.jobs)
        im.s.spawn(Impl::jobLauncher(im, *jr));
    im.s.run();
    im.s.reapFinished();

    ClusterReport rep;
    rep.seconds = im.s.now();
    rep.events = im.s.processedEvents();
    rep.net = im.fabric.report();
    rep.faults = im.injector.report();
    for (auto &jr : im.jobs) {
        JobReport j;
        j.name = jr->desc.name;
        j.kind = jr->desc.kind;
        j.priority = jr->desc.priority;
        j.share = jr->desc.share;
        j.stores = jr->desc.stores;
        j.submitAtS = jr->desc.submitAtS;
        j.startS = jr->startS;
        j.endS = jr->endS;
        j.makespanS = jr->endS - jr->startS;
        if (im.sched) {
            j.preemptions = im.sched->preemptions(jr->schedId);
            j.waitS = im.sched->waitS(jr->schedId);
            j.chargedGpuS = im.sched->chargedS(jr->schedId);
        }
        if (jr->ft) {
            TrainReport t;
            jr->ft->finalize(t);
            j.stages = t.stages;
        } else if (jr->offline) {
            InferenceReport t;
            jr->offline->finalize(t);
            j.stages = t.stages;
        } else if (jr->online) {
            OnlineReport t;
            jr->online->finalize(t);
            j.uploads = jr->desc.nUploads;
            j.throughput =
                j.makespanS > 0.0
                    ? static_cast<double>(jr->desc.nUploads) /
                          j.makespanS
                    : 0.0;
            j.p50Ms = t.p50Ms;
            j.p95Ms = t.p95Ms;
            j.p99Ms = t.p99Ms;
            j.meanMs = t.meanMs;
            j.saturated = t.saturated;
        } else if (jr->serveFlow) {
            serve::ServeReport t;
            jr->serveFlow->finalize(t);
            j.uploads = t.uploads;
            j.offered = t.offered;
            j.goodput = t.goodput;
            j.shed = t.shedThrottle + t.shedQueueFull +
                     t.shedDeadline + t.shedUnavailable;
            j.redispatched = t.redispatched;
            j.abandoned = t.abandoned;
            j.peakQueueDepth = t.peakQueueDepth;
            j.throughput =
                j.makespanS > 0.0
                    ? static_cast<double>(t.completed) / j.makespanS
                    : 0.0;
            j.p50Ms = t.p50Ms;
            j.p95Ms = t.p95Ms;
            j.p99Ms = t.p99Ms;
            j.p999Ms = t.p999Ms;
            j.meanMs = t.meanMs;
        } else if (jr->srv) {
            TrainReport t;
            jr->srv->finalize(t);
            j.stages = t.stages;
        } else if (jr->media) {
            MediaReport t;
            jr->media->finalize(t);
            j.stages = jr->media->stages();
        } else if (jr->georep) {
            georep::GeoRepReport t;
            jr->georep->finalize(t);
            j.publishedVersions = t.publishedVersions;
            j.minSiteVersion = t.minSiteVersion;
            j.geoWanBytes = t.wanBytes;
            j.geoRetransmits = t.retransmits;
            j.geoCheckpointFallbacks = t.checkpointFallbacks;
            j.stalenessP95S = t.stalenessP95S;
            j.stalenessMaxS = t.stalenessMaxS;
        }
        if (im.monitor)
            j.health = im.monitor->summary(jr->desc.name);
        rep.jobs.push_back(std::move(j));
    }
    return rep;
}

} // namespace ndp::core::sched
