/**
 * @file
 * Model checkpointing.
 *
 * The Tuner persists each fine-tuned model version before
 * redistributing deltas (Check-N-Run [29] is, at heart, a
 * checkpointing system). A checkpoint is a versioned, compressed,
 * checksummed snapshot of a model's full parameter vector:
 *
 *   "NDCK" magic | u32 version | u32 param count | u32 FNV-1a of the
 *   raw parameter bytes | deflateFull(parameter bytes)
 *
 * Deltas chain against checkpoints: restore version N, apply the
 * stored delta, obtain version N+1 — exactly what a PipeStore does on
 * a model update.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/layers.h"
#include "storage/codec.h"

namespace ndp::core {

struct Checkpoint
{
    int version = 0;
    storage::Bytes payload;

    size_t bytes() const { return payload.size(); }
};

/** Snapshot @p model's full parameter vector (frozen layers too). */
Checkpoint saveCheckpoint(nn::Layer &model, int version);

/** Parameter vector stored in @p ckpt; nullopt if corrupt. */
std::optional<std::vector<float>> restoreParams(const Checkpoint &ckpt);

/**
 * Load @p ckpt into @p model.
 * @return false on corruption or parameter-count mismatch.
 */
bool restoreCheckpoint(const Checkpoint &ckpt, nn::Layer &model);

/** Version recorded in the payload header, if valid. */
std::optional<int> checkpointVersion(const storage::Bytes &payload);

/** FNV-1a 32-bit hash (the checkpoint checksum). */
uint32_t fnv1a(const uint8_t *data, size_t n);

/** @name Delta-push version reconciliation
 *
 * A delta only upgrades a replica whose version matches the base the
 * Tuner diffed against. Reordered, replayed, or dropped pushes leave a
 * replica behind (or already current); the typed status tells the
 * distribution layer whether to retry, skip, or fall back to a full
 * checkpoint.
 * @{ */
enum class DeltaPushStatus
{
    /** Delta applied; replica now at the new version. */
    Applied,
    /** Replica already at (or past) the new version: duplicate push. */
    AlreadyCurrent,
    /** Replica version != base version: delta cannot chain. */
    VersionMismatch,
    /** Payload failed to decode or apply. */
    Corrupt,
};

const char *deltaPushStatusName(DeltaPushStatus s);

/** One PipeStore's local copy of the model. */
struct PipeStoreReplica
{
    std::vector<float> params;
    int version = 0;
};

struct ModelDelta;

/**
 * Apply @p delta (diffed against @p base_version) to @p replica,
 * reconciling versions first. Only an exact base match mutates the
 * replica; every other outcome leaves it untouched.
 */
DeltaPushStatus applyDeltaPush(PipeStoreReplica &replica,
                               const ModelDelta &delta,
                               int base_version, int new_version);

} // namespace ndp::core
