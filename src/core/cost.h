/**
 * @file
 * Operational cost model (§7.2, Fig. 21), using the on-demand hourly
 * prices recorded in the instance catalog.
 */

#pragma once

#include "core/config.h"

namespace ndp::core {

/** Cost of running one server for @p seconds, USD. */
double serverCostUsd(const hw::ServerSpec &spec, double seconds);

/** NDPipe fine-tuning cost: cfg.nStores PipeStores + one Tuner. */
double ndpipeRunCostUsd(const ExperimentConfig &cfg, double seconds);

/** SRV cost: the host plus cfg.srvStorageServers storage servers. */
double srvRunCostUsd(const ExperimentConfig &cfg, double seconds);

} // namespace ndp::core
