#include "core/online.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/sched/scheduler.h"
#include "hw/devices.h"
#include "hw/power.h"
#include "models/throughput.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/wait_group.h"

namespace ndp::core {

// Coroutines below borrow run-scope state by reference; they are all
// joined by s.run() inside the enclosing entry point (or the multi-job
// Cluster) before the referents die.
// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)

namespace {

/** Everything the serving coroutines share; devices and fabric nodes
 *  are borrowed from OnlinePorts. */
struct OnlineCtx
{
    explicit OnlineCtx(const OnlinePorts &ports)
        : cpu(*ports.cpu), gpu(*ports.gpu), fabric(*ports.fabric),
          clientNode(ports.clientNode), serverNode(ports.serverNode),
          faults(ports.faults), sched(ports.sched), jobId(ports.jobId)
    {
        uploadBytes = models::kRawImageMB * 1e6;
    }

    hw::CpuPool &cpu;
    hw::GpuExec &gpu;
    net::NetFabric &fabric;
    net::NodeId clientNode = net::kNoNode;
    net::NodeId serverNode = net::kNoNode;
    double uploadBytes = 0.0;
    SampleStat latency;
    /** Non-null only when a non-empty FaultPlan armed the run. */
    sim::FaultInjector *faults = nullptr;
    /** Multi-job hooks (null/-1 single-tenant: zero-cost rule). An
     *  online job owns no stores, so it never *parks* — it only
     *  charges its GPU service so competitors' fair shares see it. */
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    /** Null when tracing is off (zero-cost rule). */
    obs::Tracer *trace = nullptr;
    int trkReq = 0;
    int trkFault = 0;
};

/** One upload's journey: upload over the fabric (retransmitting on
 * loss) -> preprocess -> classify -> record latency. The fault hooks
 * model the photo-upload leg: a lost upload retransmits with bounded
 * exponential backoff (latency counts the backoff and every
 * retransmitted copy crosses the wire again), and a stalled server
 * delays the request; an exhausted retry budget drops the upload as a
 * typed loss.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents live
 * in the dataflow's scope, which joins this task via s.run() before
 * they die) */
sim::Task
uploadProc(sim::Simulator &s, OnlineCtx &ctx, double preproc_s,
           double infer_s, sim::WaitGroup &wg)
{
    double arrived = s.now();
    obs::AsyncSpanGuard req(ctx.trace, s, ctx.trkReq,
                            obs::Cat::Service, "request");
    co_await ctx.fabric.transfer(ctx.clientNode, ctx.serverNode,
                                 ctx.uploadBytes,
                                 net::FlowClass::Upload);
    if (sim::FaultInjector *inj = ctx.faults) {
        double backoff = inj->plan().msgRetryBackoffS;
        int resends = 0;
        bool dropped = false;
        while (inj->drawMessageLoss(0)) {
            if (++resends > inj->plan().msgRetryLimit) {
                inj->noteUnrecovered(sim::FaultClass::MessageLoss, 1);
                dropped = true;
                break;
            }
            if (ctx.trace)
                ctx.trace->instant(ctx.trkFault, obs::Cat::Fault,
                                   "upload-loss", s.now(),
                                   {{"resend", (double)resends}});
            ++inj->report().messagesResent;
            inj->report().degradedS += backoff;
            co_await s.delay(backoff);
            backoff *= 2.0;
            co_await ctx.fabric.transfer(ctx.clientNode,
                                         ctx.serverNode,
                                         ctx.uploadBytes,
                                         net::FlowClass::Upload);
        }
        if (resends > 0 && !dropped)
            inj->noteMsgRecovered(0);
        if (dropped) {
            inj->noteMsgAbandoned(0);
            if (ctx.trace)
                ctx.trace->instant(ctx.trkFault, obs::Cat::Fault,
                                   "upload-dropped", s.now());
            wg.done();
            co_return;
        }
        if (double d = inj->stallDelay(0, s.now()); d > 0.0) {
            if (ctx.trace)
                ctx.trace->instant(ctx.trkFault, obs::Cat::Fault,
                                   "server-stall", s.now(),
                                   {{"s", d}});
            inj->report().degradedS += d;
            co_await s.delay(d);
        }
    }
    co_await ctx.cpu.run(1, preproc_s);
    // Batch boundary: let the fair-share scheduler deschedule this job
    // before it takes the GPU. An online job owns no stores, so it is
    // always runnable and the yield's fast path keeps event order
    // bit-identical in single-tenant runs.
    if (ctx.sched)
        co_await ctx.sched->yield(ctx.jobId);
    co_await ctx.gpu.compute(infer_s);
    if (ctx.sched)
        ctx.sched->charge(ctx.jobId, infer_s);
    ctx.latency.add(s.now() - arrived);
    wg.done();
}

/** Poisson arrival generator spawning upload processes.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents live
 * in the dataflow's scope, which joins this task via s.run() before
 * they die) */
sim::Task
arrivalProc(sim::Simulator &s, OnlineCtx &ctx, OnlineConfig cfg,
            double preproc_s, double infer_s, sim::WaitGroup &wg)
{
    ndp::Rng rng(cfg.seed);
    for (uint64_t i = 0; i < cfg.nUploads; ++i) {
        double gap =
            -std::log(1.0 - rng.uniform()) / cfg.arrivalsPerSec;
        co_await s.delay(gap);
        s.spawn(uploadProc(s, ctx, preproc_s, infer_s, wg));
    }
}

/** Multi-job completion monitor for online serving.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents live
 * in the dataflow's scope, which joins this task via s.run() before
 * they die) */
sim::Task
onlineJobMonitor(sim::WaitGroup &wg, sim::WaitGroup &job_done)
{
    co_await wg.wait();
    job_done.done();
}

} // namespace

struct OnlineDataflow::Impl
{
    Impl(sim::Simulator &sim, const OnlineConfig &config,
         const OnlinePorts &p)
        : s(sim), cfg(config), ports(p), ctx(p), gauges(p.trace),
          wg(sim)
    {}

    sim::Simulator &s;
    OnlineConfig cfg;
    OnlinePorts ports;
    OnlineCtx ctx;
    obs::GaugeSet gauges;
    sim::WaitGroup wg;
    double preprocS = 0.0;
    double inferS = 0.0;
};

OnlineDataflow::OnlineDataflow(sim::Simulator &s,
                               const OnlineConfig &cfg,
                               const OnlinePorts &ports)
    : impl_(std::make_unique<Impl>(s, cfg, ports))
{
    Impl &im = *impl_;
    obs::Tracer *tr = ports.trace;
    im.ctx.trace = tr;
    const std::string server_node =
        obs::scopedNode(ports.scope, "server");
    if (tr) {
        im.ctx.trkReq = tr->track(server_node, "requests");
        im.ctx.trkFault = tr->track(server_node, "faults");
        im.gauges.add(obs::scopedNode(ports.scope, "net"),
                      "ingress.util", [c = &im.ctx] {
                          return c->fabric.downlinkUtilization(
                              c->fabric.ingress());
                      });
        im.gauges.add(server_node, "util.cpu",
                      [c = &im.ctx] { return c->cpu.utilization(); });
        im.gauges.add(server_node, "util.gpu",
                      [c = &im.ctx] { return c->gpu.utilization(); });
        im.gauges.add(server_node, "power.w",
                      [probe = hw::PowerProbe{&im.cfg.server,
                                              ports.gpu, ports.cpu}] {
                          return probe.watts();
                      });
    }
    // Online requests run at batch 1: latency, not throughput.
    im.preprocS = 1.0 / kPreprocImgPerSecPerCore;
    im.inferS =
        1.0 / models::deviceIps(*cfg.server.gpu, *cfg.model, 1);
}

OnlineDataflow::~OnlineDataflow() = default;

void
OnlineDataflow::spawn()
{
    Impl &im = *impl_;
    im.wg.add(static_cast<int>(im.cfg.nUploads));
    im.s.spawn(arrivalProc(im.s, im.ctx, im.cfg, im.preprocS,
                           im.inferS, im.wg));
    if (im.ports.jobDone)
        im.s.spawn(onlineJobMonitor(im.wg, *im.ports.jobDone));
}

void
OnlineDataflow::finalize(OnlineReport &rep)
{
    Impl &im = *impl_;
    rep.p50Ms = im.ctx.latency.percentile(50.0) * 1e3;
    rep.p95Ms = im.ctx.latency.percentile(95.0) * 1e3;
    rep.p99Ms = im.ctx.latency.percentile(99.0) * 1e3;
    rep.meanMs = im.ctx.latency.mean() * 1e3;
    rep.gpuUtil = im.ctx.gpu.utilization();
    rep.cpuUtil = im.ctx.cpu.utilization();

    // If the mean latency dwarfs the no-queue service time, the
    // offered load exceeds capacity and the queue grew without bound.
    double upload_s =
        im.ctx.fabric.serviceTime(im.ctx.clientNode, im.ctx.serverNode,
                                  im.ctx.uploadBytes);
    double service_ms = (upload_s + im.preprocS + im.inferS) * 1e3;
    rep.saturated = rep.meanMs > 10.0 * service_ms;
}

double
OnlineDataflow::preprocS() const
{
    return impl_->preprocS;
}

double
OnlineDataflow::inferS() const
{
    return impl_->inferS;
}

OnlineReport
runOnlineInference(const OnlineConfig &cfg)
{
    OnlineReport rep;
    rep.uploads = cfg.nUploads;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    hw::CpuPool cpu(s, cfg.preprocessCores);
    hw::GpuExec gpu(s, *cfg.server.gpu, cfg.server.nGpus);
    // Topology: an aggregate client-side node (the upload front door)
    // and the inference server. Concurrent uploads contend for the
    // server's downlink under max-min sharing.
    net::NetFabric fabric(s);
    OnlinePorts ports;
    ports.fabric = &fabric;
    ports.clientNode = fabric.addNode(cfg.server.nic);
    ports.serverNode = fabric.addNode(cfg.server.nic);
    fabric.setIngress(ports.serverNode);
    fabric.setTracer(tr);
    ports.cpu = &cpu;
    ports.gpu = &gpu;
    sim::FaultInjector injector(s, cfg.faults, 1);
    injector.attachObserver(obs::HealthMonitor::current());
    ports.faults = injector.armed() ? &injector : nullptr;
    ports.trace = tr;

    OnlineDataflow flow(s, cfg, ports);
    flow.spawn();
    s.run();
    s.reapFinished();

    rep.seconds = s.now();
    rep.throughput = rep.seconds > 0.0
                         ? static_cast<double>(cfg.nUploads) /
                               rep.seconds
                         : 0.0;
    flow.finalize(rep);
    rep.faults = injector.report();
    rep.net = fabric.report();
    return rep;
}

// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)

double
onlineCapacity(const OnlineConfig &cfg)
{
    double preproc_s = 1.0 / kPreprocImgPerSecPerCore;
    double infer_s =
        1.0 / models::deviceIps(*cfg.server.gpu, *cfg.model, 1);
    double cpu_cap = cfg.preprocessCores / preproc_s;
    double gpu_cap = cfg.server.nGpus / infer_s;
    return std::min(cpu_cap, gpu_cap);
}

} // namespace ndp::core
