#include "core/online.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "hw/devices.h"
#include "hw/power.h"
#include "models/throughput.h"
#include "obs/trace.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/wait_group.h"

namespace ndp::core {

// Coroutines below borrow run-scope state by reference; they are all
// joined by s.run() inside runOnlineInference before the referents die.
// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)

namespace {

struct OnlineCtx
{
    OnlineCtx(sim::Simulator &s, const OnlineConfig &cfg)
        : cpu(s, cfg.preprocessCores),
          gpu(s, *cfg.server.gpu, cfg.server.nGpus), fabric(s)
    {
        // Topology: an aggregate client-side node (the upload front
        // door) and the inference server. Concurrent uploads contend
        // for the server's downlink under max-min sharing.
        clientNode = fabric.addNode(cfg.server.nic);
        serverNode = fabric.addNode(cfg.server.nic);
        fabric.setIngress(serverNode);
        uploadBytes = models::kRawImageMB * 1e6;
    }

    hw::CpuPool cpu;
    hw::GpuExec gpu;
    net::NetFabric fabric;
    net::NodeId clientNode = net::kNoNode;
    net::NodeId serverNode = net::kNoNode;
    double uploadBytes = 0.0;
    SampleStat latency;
    /** Non-null only when a non-empty FaultPlan armed the run. */
    sim::FaultInjector *faults = nullptr;
    /** Null when tracing is off (zero-cost rule). */
    obs::Tracer *trace = nullptr;
    int trkReq = 0;
    int trkFault = 0;
};

/** One upload's journey: upload over the fabric (retransmitting on
 * loss) -> preprocess -> classify -> record latency. The fault hooks
 * model the photo-upload leg: a lost upload retransmits with bounded
 * exponential backoff (latency counts the backoff and every
 * retransmitted copy crosses the wire again), and a stalled server
 * delays the request; an exhausted retry budget drops the upload as a
 * typed loss.
 * ndplint: allow(coroutine-ref-param) — referents live in
 * runOnlineInference's scope, which joins this task via s.run(). */
sim::Task
uploadProc(sim::Simulator &s, OnlineCtx &ctx, double preproc_s,
           double infer_s, sim::WaitGroup &wg)
{
    double arrived = s.now();
    obs::AsyncSpanGuard req(ctx.trace, s, ctx.trkReq,
                            obs::Cat::Service, "request");
    co_await ctx.fabric.transfer(ctx.clientNode, ctx.serverNode,
                                 ctx.uploadBytes,
                                 net::FlowClass::Upload);
    if (sim::FaultInjector *inj = ctx.faults) {
        double backoff = inj->plan().msgRetryBackoffS;
        int resends = 0;
        bool dropped = false;
        while (inj->drawMessageLoss(0)) {
            if (++resends > inj->plan().msgRetryLimit) {
                inj->noteUnrecovered(sim::FaultClass::MessageLoss, 1);
                dropped = true;
                break;
            }
            if (ctx.trace)
                ctx.trace->instant(ctx.trkFault, obs::Cat::Fault,
                                   "upload-loss", s.now(),
                                   {{"resend", (double)resends}});
            ++inj->report().messagesResent;
            inj->report().degradedS += backoff;
            co_await s.delay(backoff);
            backoff *= 2.0;
            co_await ctx.fabric.transfer(ctx.clientNode,
                                         ctx.serverNode,
                                         ctx.uploadBytes,
                                         net::FlowClass::Upload);
        }
        if (dropped) {
            if (ctx.trace)
                ctx.trace->instant(ctx.trkFault, obs::Cat::Fault,
                                   "upload-dropped", s.now());
            wg.done();
            co_return;
        }
        if (double d = inj->stallDelay(0, s.now()); d > 0.0) {
            if (ctx.trace)
                ctx.trace->instant(ctx.trkFault, obs::Cat::Fault,
                                   "server-stall", s.now(),
                                   {{"s", d}});
            inj->report().degradedS += d;
            co_await s.delay(d);
        }
    }
    co_await ctx.cpu.run(1, preproc_s);
    co_await ctx.gpu.compute(infer_s);
    ctx.latency.add(s.now() - arrived);
    wg.done();
}

/** Poisson arrival generator spawning upload processes.
 * ndplint: allow(coroutine-ref-param) — referents live in
 * runOnlineInference's scope, which joins this task via s.run(). */
sim::Task
arrivalProc(sim::Simulator &s, OnlineCtx &ctx, OnlineConfig cfg,
            double preproc_s, double infer_s, sim::WaitGroup &wg)
{
    ndp::Rng rng(cfg.seed);
    for (uint64_t i = 0; i < cfg.nUploads; ++i) {
        double gap =
            -std::log(1.0 - rng.uniform()) / cfg.arrivalsPerSec;
        co_await s.delay(gap);
        s.spawn(uploadProc(s, ctx, preproc_s, infer_s, wg));
    }
}

} // namespace

OnlineReport
runOnlineInference(const OnlineConfig &cfg)
{
    OnlineReport rep;
    rep.uploads = cfg.nUploads;

    sim::Simulator s;
    OnlineCtx ctx(s, cfg);
    obs::Tracer *tr = obs::Tracer::current();
    obs::GaugeSet gauges(tr);
    ctx.trace = tr;
    ctx.fabric.setTracer(tr);
    if (tr) {
        ctx.trkReq = tr->track("server", "requests");
        ctx.trkFault = tr->track("server", "faults");
        gauges.add("net", "ingress.util", [&ctx] {
            return ctx.fabric.downlinkUtilization(
                ctx.fabric.ingress());
        });
        gauges.add("server", "util.cpu",
                   [&ctx] { return ctx.cpu.utilization(); });
        gauges.add("server", "util.gpu",
                   [&ctx] { return ctx.gpu.utilization(); });
        gauges.add("server", "power.w",
                   [probe = hw::PowerProbe{&cfg.server, &ctx.gpu,
                                           &ctx.cpu}] {
                       return probe.watts();
                   });
    }
    sim::FaultInjector injector(s, cfg.faults, 1);
    ctx.faults = injector.armed() ? &injector : nullptr;
    sim::WaitGroup wg(s);
    wg.add(static_cast<int>(cfg.nUploads));

    // Online requests run at batch 1: latency, not throughput.
    double preproc_s = 1.0 / kPreprocImgPerSecPerCore;
    double infer_s =
        1.0 / models::deviceIps(*cfg.server.gpu, *cfg.model, 1);

    s.spawn(arrivalProc(s, ctx, cfg, preproc_s, infer_s, wg));
    s.run();
    s.reapFinished();

    rep.seconds = s.now();
    rep.throughput = rep.seconds > 0.0
                         ? static_cast<double>(cfg.nUploads) /
                               rep.seconds
                         : 0.0;
    rep.p50Ms = ctx.latency.percentile(50.0) * 1e3;
    rep.p95Ms = ctx.latency.percentile(95.0) * 1e3;
    rep.p99Ms = ctx.latency.percentile(99.0) * 1e3;
    rep.meanMs = ctx.latency.mean() * 1e3;
    rep.gpuUtil = ctx.gpu.utilization();
    rep.cpuUtil = ctx.cpu.utilization();

    // If the mean latency dwarfs the no-queue service time, the
    // offered load exceeds capacity and the queue grew without bound.
    double upload_s =
        ctx.fabric.serviceTime(ctx.clientNode, ctx.serverNode,
                               ctx.uploadBytes);
    double service_ms = (upload_s + preproc_s + infer_s) * 1e3;
    rep.saturated = rep.meanMs > 10.0 * service_ms;
    rep.faults = injector.report();
    rep.net = ctx.fabric.report();
    return rep;
}

// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)

double
onlineCapacity(const OnlineConfig &cfg)
{
    double preproc_s = 1.0 / kPreprocImgPerSecPerCore;
    double infer_s =
        1.0 / models::deviceIps(*cfg.server.gpu, *cfg.model, 1);
    double cpu_cap = cfg.preprocessCores / preproc_s;
    double gpu_cap = cfg.server.nGpus / infer_s;
    return std::min(cpu_cap, gpu_cap);
}

} // namespace ndp::core
