#include "core/online.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "hw/devices.h"
#include "models/throughput.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/wait_group.h"

namespace ndp::core {

// Coroutines below borrow run-scope state by reference; they are all
// joined by s.run() inside runOnlineInference before the referents die.
// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)

namespace {

struct OnlineCtx
{
    OnlineCtx(sim::Simulator &s, const OnlineConfig &cfg)
        : cpu(s, cfg.preprocessCores),
          gpu(s, *cfg.server.gpu, cfg.server.nGpus)
    {}

    hw::CpuPool cpu;
    hw::GpuExec gpu;
    SampleStat latency;
};

/** One upload's journey: preprocess -> classify -> record latency.
 * ndplint: allow(coroutine-ref-param) — referents live in
 * runOnlineInference's scope, which joins this task via s.run(). */
sim::Task
uploadProc(sim::Simulator &s, OnlineCtx &ctx, double preproc_s,
           double infer_s, sim::WaitGroup &wg)
{
    double arrived = s.now();
    co_await ctx.cpu.run(1, preproc_s);
    co_await ctx.gpu.compute(infer_s);
    ctx.latency.add(s.now() - arrived);
    wg.done();
}

/** Poisson arrival generator spawning upload processes.
 * ndplint: allow(coroutine-ref-param) — referents live in
 * runOnlineInference's scope, which joins this task via s.run(). */
sim::Task
arrivalProc(sim::Simulator &s, OnlineCtx &ctx, OnlineConfig cfg,
            double preproc_s, double infer_s, sim::WaitGroup &wg)
{
    ndp::Rng rng(cfg.seed);
    for (uint64_t i = 0; i < cfg.nUploads; ++i) {
        double gap =
            -std::log(1.0 - rng.uniform()) / cfg.arrivalsPerSec;
        co_await s.delay(gap);
        s.spawn(uploadProc(s, ctx, preproc_s, infer_s, wg));
    }
}

} // namespace

OnlineReport
runOnlineInference(const OnlineConfig &cfg)
{
    OnlineReport rep;
    rep.uploads = cfg.nUploads;

    sim::Simulator s;
    OnlineCtx ctx(s, cfg);
    sim::WaitGroup wg(s);
    wg.add(static_cast<int>(cfg.nUploads));

    // Online requests run at batch 1: latency, not throughput.
    double preproc_s = 1.0 / kPreprocImgPerSecPerCore;
    double infer_s =
        1.0 / models::deviceIps(*cfg.server.gpu, *cfg.model, 1);

    s.spawn(arrivalProc(s, ctx, cfg, preproc_s, infer_s, wg));
    s.run();
    s.reapFinished();

    rep.seconds = s.now();
    rep.throughput = rep.seconds > 0.0
                         ? static_cast<double>(cfg.nUploads) /
                               rep.seconds
                         : 0.0;
    rep.p50Ms = ctx.latency.percentile(50.0) * 1e3;
    rep.p95Ms = ctx.latency.percentile(95.0) * 1e3;
    rep.p99Ms = ctx.latency.percentile(99.0) * 1e3;
    rep.meanMs = ctx.latency.mean() * 1e3;
    rep.gpuUtil = ctx.gpu.utilization();
    rep.cpuUtil = ctx.cpu.utilization();

    // If the mean latency dwarfs the no-queue service time, the
    // offered load exceeds capacity and the queue grew without bound.
    double service_ms = (preproc_s + infer_s) * 1e3;
    rep.saturated = rep.meanMs > 10.0 * service_ms;
    return rep;
}

// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)

double
onlineCapacity(const OnlineConfig &cfg)
{
    double preproc_s = 1.0 / kPreprocImgPerSecPerCore;
    double infer_s =
        1.0 / models::deviceIps(*cfg.server.gpu, *cfg.model, 1);
    double cpu_cap = cfg.preprocessCores / preproc_s;
    double gpu_cap = cfg.server.nGpus / infer_s;
    return std::min(cpu_cap, gpu_cap);
}

} // namespace ndp::core
