#include "core/cost.h"

namespace ndp::core {

double
serverCostUsd(const hw::ServerSpec &spec, double seconds)
{
    return spec.hourlyUsd * seconds / 3600.0;
}

double
ndpipeRunCostUsd(const ExperimentConfig &cfg, double seconds)
{
    return cfg.nStores * serverCostUsd(cfg.storeSpec, seconds) +
           serverCostUsd(cfg.tunerSpec, seconds);
}

double
srvRunCostUsd(const ExperimentConfig &cfg, double seconds)
{
    return serverCostUsd(cfg.hostSpec, seconds) +
           cfg.srvStorageServers *
               serverCostUsd(cfg.srvStoreSpec, seconds);
}

} // namespace ndp::core
