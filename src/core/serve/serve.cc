#include "core/serve/serve.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/sched/scheduler.h"
#include "hw/devices.h"
#include "models/throughput.h"
#include "obs/trace.h"
#include "sim/channel.h"
#include "sim/stats.h"
#include "sim/wait_group.h"

namespace ndp::core::serve {

ValidationResult
ServeConfig::validate() const
{
    if (auto e = arrivals.validate(); !e.empty())
        return ValidationResult(e);
    if (auto e = admission.validate(); !e.empty())
        return ValidationResult(e);
    if (model == nullptr)
        return ValidationResult("ServeConfig: model is null");
    if (workersPerStore < 1)
        return ValidationResult(
            "ServeConfig: workersPerStore must be >= 1");
    if (nStores < 1)
        return ValidationResult("ServeConfig: nStores must be >= 1");
    if (auto e = faults.validate(); !e.empty())
        return ValidationResult(e);
    return {};
}

// Coroutines below borrow run-scope state by reference; they are all
// joined by s.run() inside the enclosing entry point (or the multi-job
// Cluster) before the referents die.
// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)

namespace {

/** Everything the serving coroutines share; fleet devices and fabric
 *  nodes are borrowed from ServePorts. */
struct ServeCtx
{
    ServeCtx(sim::Simulator &sim, const ServeConfig &config,
             const ServePorts &p)
        : s(sim), cfg(config), fabric(*p.fabric),
          clientNode(p.clientNode), storeNodes(p.storeNodes),
          stores(p.stores), fleetIdx(p.fleetIdx), faults(p.faults),
          sched(p.sched), jobId(p.jobId), monitor(p.monitor),
          scopeKey(p.scope.empty() ? "serve" : p.scope),
          lb(static_cast<int>(p.stores.size())),
          admit(config.admission, lb), gen(config.arrivals)
    {
        for (size_t b = 0; b < stores.size(); ++b) {
            // queueCap bounds each store's outstanding requests, so a
            // queueCap-deep channel can never block a putter — the
            // invariant close() depends on.
            queues.push_back(std::make_unique<sim::Channel<sim::Request>>(
                sim, static_cast<size_t>(config.admission.queueCap)));
            shards.emplace_back(
                std::make_unique<LatencyHistogram>());
        }
        if (monitor != nullptr)
            monScope = monitor->scopeHandle(scopeKey);
    }

    sim::Simulator &s;
    const ServeConfig &cfg;
    net::NetFabric &fabric;
    net::NodeId clientNode = net::kNoNode;
    std::vector<net::NodeId> storeNodes;
    std::vector<StoreStations *> stores;
    std::vector<int> fleetIdx;
    /** Non-null only when a non-empty FaultPlan armed the run. */
    sim::FaultInjector *faults = nullptr;
    /** Multi-job hooks (null/-1 single-tenant: zero-cost rule). */
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    /** Null when monitoring is off (zero-cost rule). */
    obs::HealthMonitor *monitor = nullptr;
    /** Monitor attribution key: the job scope, "serve" standalone. */
    std::string scopeKey;
    /** Pre-resolved monitor scope (valid only when monitor != null):
     *  the per-request hooks skip the scope lookup entirely. */
    obs::HealthMonitor::ScopeHandle monScope;
    /** Admission counter for the strided queue-depth gauge sample. */
    uint32_t monQueueTick = 0;

    LoadBalancer lb;
    AdmissionController admit;
    /** The seeded open-loop request stream. */
    sim::ArrivalProcess gen;
    /** Per-store bounded request queues (index == backend index). */
    std::vector<std::unique_ptr<sim::Channel<sim::Request>>> queues;
    /** Per-store latency shards, merged at finalize. */
    std::vector<std::unique_ptr<LatencyHistogram>> shards;

    /** Sim time the dataflow started (stream time 0). */
    double startS = 0.0;
    /** Accepted-but-unfinished requests; the arrival proc awaits this
     *  before closing the queues, so workers never see a put after
     *  close and the run always drains. */
    std::unique_ptr<sim::WaitGroup> inflight;
    uint64_t uploadsDone = 0;
    uint64_t queriesDone = 0;
    /** Per-kind uncontended service estimates (deadline check). */
    double estUploadS = 0.0;
    double estQueryS = 0.0;
    double preprocS = 0.0;
    double inferS = 0.0;

    /** Null when tracing is off (zero-cost rule). */
    obs::Tracer *trace = nullptr;
    int trkReq = 0;
    int trkFault = 0;

    bool
    storeCrashed(size_t b, double now)
    {
        return faults != nullptr &&
               faults->crashed(fleetIdx[b], now);
    }

    /** Stop routing to @p b and note the event once. */
    void
    markCrashed(size_t b)
    {
        if (!lb.healthy(static_cast<int>(b)))
            return;
        lb.setHealthy(static_cast<int>(b), false);
        // The balancer re-routes from this instant: the crash's
        // recovery handling (for the detection ledger) is done.
        if (faults)
            faults->noteCrashHandled(true);
        if (trace)
            trace->instant(trkFault, obs::Cat::Fault, "store-crash",
                           s.now(),
                           {{"store", static_cast<double>(fleetIdx[b])},
                            {"queued", static_cast<double>(
                                           queues[b]->size())}});
    }

};

/**
 * Move an accepted request from crashed store @p from onto a healthy
 * store with queue room; abandon it when none has. The target enqueue
 * happens before the source dequeue so the total outstanding count
 * never transiently reads drained.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents live
 * in the dataflow's Impl, which joins this task via s.run() before
 * they die) */
sim::Task
redispatchOne(ServeCtx &ctx, sim::Request r, size_t from)
{
    const int target = ctx.lb.pick();
    if (target >= 0 &&
        ctx.lb.depth(target) < ctx.admit.config().queueCap) {
        ctx.lb.enqueued(target);
        ctx.lb.dequeued(static_cast<int>(from));
        ++ctx.admit.stats().redispatched;
        co_await ctx.queues[static_cast<size_t>(target)]->put(r);
    } else {
        ctx.lb.dequeued(static_cast<int>(from));
        ++ctx.admit.stats().abandoned;
        if (ctx.monitor)
            ctx.monitor->onShed(ctx.monScope, ctx.s.now());
        ctx.inflight->done();
    }
}

/** Serve one request on store @p b: the near-data upload path (fabric
 * in, CPU preprocess, GPU classify) or the query path (disk read,
 * reply out). Returns with the request's depth/inflight released.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents live
 * in the dataflow's Impl, which joins this task via s.run() before
 * they die) */
sim::Task
serveOne(ServeCtx &ctx, size_t b, sim::Request r)
{
    sim::Simulator &s = ctx.s;
    StoreStations &st = *ctx.stores[b];
    obs::AsyncSpanGuard span(ctx.trace, s, ctx.trkReq,
                             obs::Cat::Service,
                             sim::requestKindName(r.kind),
                             {{"store",
                               static_cast<double>(ctx.fleetIdx[b])}});
    bool dropped = false;
    if (r.kind == sim::RequestKind::Upload) {
        co_await ctx.fabric.transfer(ctx.clientNode, ctx.storeNodes[b],
                                     r.bytes, net::FlowClass::Upload);
        if (sim::FaultInjector *inj = ctx.faults) {
            double backoff = inj->plan().msgRetryBackoffS;
            int resends = 0;
            while (inj->drawMessageLoss(ctx.fleetIdx[b])) {
                if (++resends > inj->plan().msgRetryLimit) {
                    inj->noteUnrecovered(sim::FaultClass::MessageLoss,
                                         1);
                    dropped = true;
                    break;
                }
                ++inj->report().messagesResent;
                inj->report().degradedS += backoff;
                co_await s.delay(backoff);
                backoff *= 2.0;
                co_await ctx.fabric.transfer(ctx.clientNode,
                                             ctx.storeNodes[b],
                                             r.bytes,
                                             net::FlowClass::Upload);
            }
            if (resends > 0) {
                if (dropped)
                    inj->noteMsgAbandoned(ctx.fleetIdx[b]);
                else
                    inj->noteMsgRecovered(ctx.fleetIdx[b]);
            }
        }
        if (!dropped) {
            if (ctx.faults) {
                if (double d = ctx.faults->stallDelay(ctx.fleetIdx[b],
                                                      s.now());
                    d > 0.0) {
                    ctx.faults->report().degradedS += d;
                    co_await s.delay(d);
                }
            }
            co_await st.cpu.run(1, ctx.preprocS);
            // Batch boundary: let the fair-share scheduler deschedule
            // this job before it takes the store GPU (the fast path
            // keeps no-park runs bit-identical).
            if (ctx.sched)
                co_await ctx.sched->yield(ctx.jobId);
            co_await st.gpu.compute(ctx.inferS);
            if (ctx.sched)
                ctx.sched->charge(ctx.jobId, ctx.inferS);
        }
    } else {
        if (ctx.faults) {
            if (double d = ctx.faults->stallDelay(ctx.fleetIdx[b],
                                                  s.now());
                d > 0.0) {
                ctx.faults->report().degradedS += d;
                co_await s.delay(d);
            }
        }
        co_await st.disk.read(r.bytes);
        co_await ctx.fabric.transfer(ctx.storeNodes[b], ctx.clientNode,
                                     r.bytes,
                                     net::FlowClass::ResultShip);
    }
    ctx.lb.dequeued(static_cast<int>(b));
    if (dropped) {
        ++ctx.admit.stats().abandoned;
        if (ctx.monitor)
            ctx.monitor->onShed(ctx.monScope, ctx.s.now());
    } else {
        const double latency = ctx.s.now() - (ctx.startS + r.arriveS);
        ctx.shards[b]->record(latency);
        ++ctx.admit.stats().completed;
        const bool inDeadline =
            ctx.s.now() <= ctx.startS + r.deadlineS;
        if (inDeadline)
            ++ctx.admit.stats().completedInDeadline;
        if (ctx.monitor)
            ctx.monitor->onServeOutcome(ctx.monScope, ctx.fleetIdx[b],
                                        ctx.s.now(), latency,
                                        inDeadline);
        if (r.kind == sim::RequestKind::Upload)
            ++ctx.uploadsDone;
        else
            ++ctx.queriesDone;
    }
    ctx.inflight->done();
}

/** Store worker: pull requests off store @p b's queue and serve them.
 * A crash observed at pickup marks the store unhealthy, redispatches
 * the picked request and everything still buffered, and exits — the
 * arrival proc's close() wakes any sibling workers left blocked.
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents live
 * in the dataflow's Impl, which joins this task via s.run() before
 * they die) */
sim::Task
workerProc(ServeCtx &ctx, size_t b)
{
    while (true) {
        auto got = co_await ctx.queues[b]->get();
        if (!got)
            break;
        if (ctx.storeCrashed(b, ctx.s.now())) {
            ctx.markCrashed(b);
            co_await redispatchOne(ctx, *got, b);
            while (ctx.queues[b]->size() > 0) {
                auto more = co_await ctx.queues[b]->get();
                if (!more)
                    break;
                co_await redispatchOne(ctx, *more, b);
            }
            break;
        }
        co_await serveOne(ctx, b, *got);
    }
}

/** Paced arrival front door: emit the stream, admit or shed each
 * request, then await the in-flight drain and close every queue (the
 * only closer, and only after the last putter finished — the
 * channel-contract ordering).
 * ndplint: allow(coroutine-ref-param, coroutine-escape: referents live
 * in the dataflow's Impl, which joins this task via s.run() before
 * they die) */
sim::Task
arrivalProc(ServeCtx &ctx, sim::WaitGroup &job_done)
{
    ctx.startS = ctx.s.now();
    sim::Request r;
    while (ctx.gen.next(r)) {
        const double target = ctx.startS + r.arriveS;
        if (target > ctx.s.now())
            co_await ctx.s.delay(target - ctx.s.now());
        const double est = r.kind == sim::RequestKind::Upload
                               ? ctx.estUploadS
                               : ctx.estQueryS;
        int backend = -1;
        const Verdict v =
            ctx.admit.offer(ctx.s.now(), ctx.startS + r.deadlineS, est,
                            &backend);
        if (v != Verdict::Accept) {
            if (ctx.monitor)
                ctx.monitor->onShed(ctx.monScope, ctx.s.now());
            continue;
        }
        // Queue depth is a gauge: a strided snapshot (every 8th
        // admission) bounds the hook cost without starving the
        // saturation rule, which only reads the latest snapshot on
        // the eval cadence anyway.
        if (ctx.monitor && (++ctx.monQueueTick & 7u) == 0)
            ctx.monitor->onQueueDepth(
                ctx.monScope, ctx.s.now(), ctx.lb.totalDepth(),
                ctx.admit.config().queueCap *
                    static_cast<int>(ctx.stores.size()));
        // A crash between worker pickups is first observed here:
        // re-route before enqueueing onto a dead store.
        if (ctx.storeCrashed(static_cast<size_t>(backend),
                             ctx.s.now())) {
            ctx.markCrashed(static_cast<size_t>(backend));
            ctx.inflight->add(1);
            co_await redispatchOne(ctx, r,
                                   static_cast<size_t>(backend));
            continue;
        }
        ctx.inflight->add(1);
        co_await ctx.queues[static_cast<size_t>(backend)]->put(r);
    }
    co_await ctx.inflight->wait();
    for (auto &q : ctx.queues)
        q->close();
    job_done.done();
}

} // namespace

struct ServeDataflow::Impl
{
    Impl(sim::Simulator &sim, const ServeConfig &config,
         const ServePorts &p)
        : s(sim), cfg(config), ports(p), ctx(sim, cfg, p),
          gauges(p.trace)
    {}

    sim::Simulator &s;
    ServeConfig cfg;
    ServePorts ports;
    ServeCtx ctx;
    obs::GaugeSet gauges;
    /** Owned fallback when the caller passes no jobDone. */
    std::unique_ptr<sim::WaitGroup> ownDone;
};

ServeDataflow::ServeDataflow(sim::Simulator &s, const ServeConfig &cfg,
                             const ServePorts &ports)
    : impl_(std::make_unique<Impl>(s, cfg, ports))
{
    Impl &im = *impl_;
    cfg.validate().orThrow();
    ServeCtx &ctx = im.ctx;
    ctx.inflight = std::make_unique<sim::WaitGroup>(s);
    ctx.trace = ports.trace;

    // Uncontended per-kind service estimates for the deadline check:
    // upload = wire + preprocess + classify; query = seek/scan + wire.
    ctx.preprocS = 1.0 / kPreprocImgPerSecPerCore;
    ctx.inferS = 1.0 / models::deviceIps(*im.cfg.storeSpec.gpu,
                                         *im.cfg.model, 1);
    ctx.estUploadS =
        ctx.fabric.serviceTime(ctx.clientNode, ctx.storeNodes[0],
                               im.cfg.arrivals.uploadBytes) +
        ctx.preprocS + ctx.inferS;
    ctx.estQueryS =
        im.cfg.storeSpec.disk.streamReadSeconds(
            im.cfg.arrivals.queryBytes) +
        ctx.fabric.serviceTime(ctx.storeNodes[0], ctx.clientNode,
                               im.cfg.arrivals.queryBytes);

    if (obs::Tracer *tr = ports.trace) {
        const std::string front =
            obs::scopedNode(ports.scope, "front");
        ctx.trkReq = tr->track(front, "requests");
        ctx.trkFault = tr->track(front, "faults");
        im.gauges.add(front, "queue.depth", [c = &ctx] {
            return static_cast<double>(c->lb.totalDepth());
        });
        im.gauges.add(front, "stores.healthy", [c = &ctx] {
            return static_cast<double>(c->lb.healthyCount());
        });
        im.gauges.add(front, "rate.shed",
                      obs::RateProbe(s, [c = &ctx] {
                          return static_cast<double>(
                              c->admit.stats().shed());
                      }));
        im.gauges.add(front, "rate.goodput",
                      obs::RateProbe(s, [c = &ctx] {
                          return static_cast<double>(
                              c->admit.stats().completedInDeadline);
                      }));
    }
}

ServeDataflow::~ServeDataflow() = default;

void
ServeDataflow::spawn()
{
    Impl &im = *impl_;
    sim::WaitGroup *done = im.ports.jobDone;
    if (done == nullptr) {
        im.ownDone = std::make_unique<sim::WaitGroup>(im.s);
        im.ownDone->add(1);
        done = im.ownDone.get();
    }
    for (size_t b = 0; b < im.ctx.stores.size(); ++b)
        for (int w = 0; w < im.cfg.workersPerStore; ++w)
            im.s.spawn(workerProc(im.ctx, b));
    im.s.spawn(arrivalProc(im.ctx, *done));
}

void
ServeDataflow::finalize(ServeReport &rep)
{
    Impl &im = *impl_;
    ServeCtx &ctx = im.ctx;
    const AdmissionStats &st = ctx.admit.stats();
    rep.offered = st.offered;
    rep.accepted = st.accepted;
    rep.completed = st.completed;
    rep.goodput = st.completedInDeadline;
    rep.shedThrottle = st.shedThrottle;
    rep.shedQueueFull = st.shedQueueFull;
    rep.shedDeadline = st.shedDeadline;
    rep.shedUnavailable = st.shedUnavailable;
    rep.redispatched = st.redispatched;
    rep.abandoned = st.abandoned;
    rep.uploads = ctx.uploadsDone;
    rep.queries = ctx.queriesDone;
    rep.peakQueueDepth = ctx.lb.peakDepth();
    rep.sessionsStarted = ctx.gen.sessionsStarted();

    LatencyHistogram all;
    for (auto &shard : ctx.shards)
        all.merge(*shard);
    if (all.count() > 0) {
        rep.p50Ms = all.percentile(50.0) * 1e3;
        rep.p95Ms = all.percentile(95.0) * 1e3;
        rep.p99Ms = all.percentile(99.0) * 1e3;
        rep.p999Ms = all.percentile(99.9) * 1e3;
        rep.meanMs = all.mean() * 1e3;
        rep.maxMs = all.max() * 1e3;
    }
    if (im.ports.monitor)
        rep.health = im.ports.monitor->summary(im.ctx.scopeKey);
}

double
ServeDataflow::estUploadS() const
{
    return impl_->ctx.estUploadS;
}

double
ServeDataflow::estQueryS() const
{
    return impl_->ctx.estQueryS;
}

ServeReport
runServing(const ServeConfig &cfg)
{
    cfg.validate().orThrow();
    ServeReport rep;

    sim::Simulator s;
    obs::Tracer *tr = obs::Tracer::current();
    net::NetFabric fabric(s);
    ServePorts ports;
    ports.fabric = &fabric;
    ports.clientNode = fabric.addNode(cfg.storeSpec.nic);
    for (int i = 0; i < cfg.nStores; ++i) {
        ports.storeNodes.push_back(fabric.addNode(cfg.storeSpec.nic));
        ports.fleetIdx.push_back(i);
    }
    fabric.setIngress(ports.clientNode);
    fabric.setTracer(tr);
    std::vector<std::unique_ptr<StoreStations>> stations;
    for (int i = 0; i < cfg.nStores; ++i) {
        stations.push_back(
            std::make_unique<StoreStations>(s, cfg.storeSpec));
        ports.stores.push_back(stations.back().get());
    }
    sim::FaultInjector injector(s, cfg.faults, cfg.nStores);
    ports.faults = injector.armed() ? &injector : nullptr;
    fabric.attachFaults(ports.faults);
    ports.trace = tr;
    ports.monitor = obs::HealthMonitor::current();
    injector.attachObserver(ports.monitor);

    ServeDataflow flow(s, cfg, ports);
    flow.spawn();
    s.run();
    s.reapFinished();

    rep.seconds = s.now();
    flow.finalize(rep);
    if (rep.seconds > 0.0) {
        rep.offeredRate =
            static_cast<double>(rep.offered) / rep.seconds;
        rep.goodputRate =
            static_cast<double>(rep.goodput) / rep.seconds;
    }
    rep.faults = injector.report();
    rep.net = fabric.report();
    // Standalone run: the whole-session roll-up (the "" scope holds
    // the fault-lifecycle and gauge-fed signals the job scope lacks).
    if (ports.monitor != nullptr)
        rep.health = ports.monitor->totals();
    return rep;
}

// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)

} // namespace ndp::core::serve
