/**
 * @file
 * The production-shaped serving layer: an open-loop million-user
 * request stream (sim/arrival.h) admitted through a front-end
 * LoadBalancer + AdmissionController (serve/admission.h) onto the
 * PipeStore fleet.
 *
 * Request anatomy:
 *  - Upload: photo bytes cross the fabric client -> store (contending
 *    with every other flow, retransmitting on injected message loss),
 *    are preprocessed on the store's CPU, and classified on its GPU —
 *    the NDPipe near-data inference path under latency SLOs instead of
 *    batch throughput.
 *  - Query: the store's disk streams the photo back and the reply
 *    crosses store -> client.
 *
 * Latency is recorded into per-store LatencyHistogram shards
 * (sim/stats.h) and merged at finalize — the merge path is the same
 * one a real fleet's per-node histogram export would use.
 *
 * Fault posture: a crashed store is detected at request pickup; its
 * queued requests are redispatched to healthy stores (or abandoned
 * when none has room), the balancer stops routing to it, and the run
 * drains — never hangs — even when the crash lands inside a flash
 * crowd. Degraded links simply slow transfers; the deadline
 * accounting shows up as goodput loss, not as a stuck simulation.
 *
 * Determinism: everything downstream of the seeded ArrivalProcess is
 * RNG-free (admission is pure arithmetic, placement ties break by
 * index), so two same-seed runs produce bit-identical reports —
 * including the full percentile ladder.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "core/serve/admission.h"
#include "hw/specs.h"
#include "net/fabric.h"
#include "obs/monitor.h"
#include "sim/arrival.h"
#include "sim/fault.h"
#include "sim/wait_group.h"

namespace ndp::core::sched {
class Scheduler;
}

namespace ndp::core::serve {

struct ServeConfig
{
    /** The open-loop request stream. */
    sim::ArrivalConfig arrivals;
    /** Front-end admission policy. */
    AdmissionConfig admission;
    /** Classification model for upload inference. */
    const models::ModelSpec *model = &models::resnet50();
    /** Concurrent in-service requests per store. */
    int workersPerStore = 2;

    /** @name Standalone entry point (runServing) only
     * The Cluster overrides these with its own fleet.
     * @{ */
    int nStores = 4;
    hw::ServerSpec storeSpec = hw::g4dn4xlarge(true);
    sim::FaultPlan faults;
    /** @} */

    ValidationResult validate() const;
};

/** What one serving run did (the offered-vs-goodput ledger plus the
 *  full latency percentile ladder). */
struct ServeReport
{
    double seconds = 0.0;

    /** @name Conservation ledger (requests)
     * offered == accepted + shed*; accepted == completed + abandoned.
     * @{ */
    uint64_t offered = 0;
    uint64_t accepted = 0;
    uint64_t completed = 0;
    /** Completions inside their deadline — the goodput. */
    uint64_t goodput = 0;
    uint64_t shedThrottle = 0;
    uint64_t shedQueueFull = 0;
    uint64_t shedDeadline = 0;
    uint64_t shedUnavailable = 0;
    uint64_t redispatched = 0;
    uint64_t abandoned = 0;
    /** @} */

    /** Completed per kind. */
    uint64_t uploads = 0;
    uint64_t queries = 0;

    /** @name Rates, requests/s over the run
     * @{ */
    double offeredRate = 0.0;
    double goodputRate = 0.0;
    /** @} */

    /** @name End-to-end latency of completed requests, milliseconds
     * @{ */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double p999Ms = 0.0;
    double meanMs = 0.0;
    double maxMs = 0.0;
    /** @} */

    /** High-water mark of any one store's outstanding requests. */
    int peakQueueDepth = 0;
    uint64_t sessionsStarted = 0;

    /** Standalone runs only (the Cluster rolls these up itself). */
    sim::FaultReport faults;
    net::NetReport net;

    /** Monitor roll-up for this job's scope; all-zero when monitoring
     *  is off (the pre-existing fields above stay bit-identical
     *  either way — the obs layer's passive contract). */
    obs::HealthSummary health;
};

/**
 * Borrowed resources one serving job runs against (the borrowing
 * contract of core/training.h's FtDmpPorts): the shared fabric, the
 * aggregate client-side node requests arrive from and replies return
 * to, and the job's slice of the PipeStore fleet.
 */
struct ServePorts
{
    net::NetFabric *fabric = nullptr;
    /** Aggregate client-side node (the request front door). */
    net::NodeId clientNode = net::kNoNode;
    std::vector<net::NodeId> storeNodes;
    std::vector<StoreStations *> stores;
    /** Fleet-level store index per entry (fault-injector keys). */
    std::vector<int> fleetIdx;
    sim::FaultInjector *faults = nullptr;
    obs::Tracer *trace = nullptr;
    /** Streaming health monitor (null = monitoring off, no-op). */
    obs::HealthMonitor *monitor = nullptr;
    /** Per-job trace prefix (obs::scopedNode); empty = untouched. */
    std::string scope;
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    sim::WaitGroup *jobDone = nullptr;
};

/** One open-loop serving dataflow against borrowed fleet devices. */
class ServeDataflow
{
  public:
    ServeDataflow(sim::Simulator &s, const ServeConfig &cfg,
                  const ServePorts &ports);
    ~ServeDataflow();

    ServeDataflow(const ServeDataflow &) = delete;
    ServeDataflow &operator=(const ServeDataflow &) = delete;

    void spawn();

    /** Merge the per-store histogram shards and fill the ledger /
     *  percentile fields of @p rep (seconds/rates are derived from
     *  makespan by callers). */
    void finalize(ServeReport &rep);

    /** @name Uncontended per-kind service-time estimates
     * What the admission controller's deadline-feasibility check uses.
     * @{ */
    double estUploadS() const;
    double estQueryS() const;
    /** @} */

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Drive one open-loop serving scenario on a self-owned fleet. */
ServeReport runServing(const ServeConfig &cfg);

} // namespace ndp::core::serve
