#include "core/serve/admission.h"

namespace ndp::core::serve {

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Accept:
        return "accept";
      case Verdict::ShedThrottle:
        return "shed-throttle";
      case Verdict::ShedQueueFull:
        return "shed-queue-full";
      case Verdict::ShedDeadline:
        return "shed-deadline";
      case Verdict::ShedUnavailable:
        return "shed-unavailable";
    }
    return "?";
}

std::string
AdmissionConfig::validate() const
{
    if (tokenRatePerSec < 0.0)
        return "AdmissionConfig: tokenRatePerSec must be >= 0";
    if (tokenRatePerSec > 0.0 && tokenBurst < 1.0)
        return "AdmissionConfig: tokenBurst must be >= 1 when the "
               "throttle is enabled";
    if (queueCap < 1)
        return "AdmissionConfig: queueCap must be >= 1";
    return {};
}

} // namespace ndp::core::serve
