/**
 * @file
 * Front-end admission control for open-loop serving.
 *
 * Open-loop traffic does not slow down when the fleet falls behind, so
 * an overloaded server without admission control grows its queues (and
 * its tail latency) without bound. This module is the front door the
 * serving dataflow consults for every arriving request, in decision
 * order:
 *
 *  1. Availability: with no healthy backend the request is shed
 *     outright (ShedUnavailable).
 *  2. Token-bucket throttle: a deterministic rate limiter refilled by
 *     sim time; requests beyond rate + burst are shed (ShedThrottle).
 *  3. Placement: the LoadBalancer picks the least-loaded healthy
 *     backend (ties break to the lowest index — deterministic).
 *  4. Bounded queue: a backend at queueCap outstanding requests sheds
 *     instead of queueing (ShedQueueFull) — the knob that caps queue
 *     memory and worst-case queueing delay.
 *  5. Deadline feasibility: if the backend's estimated wait plus one
 *     service time already overruns the request's deadline, serving it
 *     would waste fleet work on a response nobody awaits — shed now
 *     (ShedDeadline).
 *
 * Conservation contract (pinned by tests/test_serve_admission.cc):
 * offered == accepted + shedThrottle + shedQueueFull + shedDeadline +
 * shedUnavailable at every instant, and at drain accepted ==
 * completed + abandoned. All state is plain integers/doubles driven by
 * sim time; no RNG, no event scheduling — admission is a pure
 * function of the arrival sequence, so same-seed runs stay
 * bit-identical.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace ndp::core::serve {

/** Deterministic token bucket refilled by elapsed sim time. */
class TokenBucket
{
  public:
    /** @p rate_per_sec == 0 disables the throttle (always admits). */
    TokenBucket(double rate_per_sec, double burst)
        : rate_(rate_per_sec), burst_(burst), tokens_(burst)
    {}

    /** Take one token at time @p now; false when the bucket is dry. */
    bool
    tryTake(double now)
    {
        if (rate_ <= 0.0)
            return true;
        refill(now);
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    /** Current level after refilling to @p now (probe for tests). */
    double
    level(double now)
    {
        refill(now);
        return tokens_;
    }

    double ratePerSec() const { return rate_; }

  private:
    void
    refill(double now)
    {
        if (now > lastS_) {
            tokens_ = std::min(burst_,
                               tokens_ + (now - lastS_) * rate_);
            lastS_ = now;
        }
    }

    double rate_;
    double burst_;
    double tokens_;
    double lastS_ = 0.0;
};

/**
 * Outstanding-request tracking and backend choice. "Depth" counts
 * accepted-but-not-finished requests per backend (queued plus in
 * service); the admission controller bounds it by queueCap, which is
 * what makes the per-backend channels non-blocking by construction.
 */
class LoadBalancer
{
  public:
    explicit LoadBalancer(int n_backends)
        : depth_(static_cast<size_t>(n_backends), 0),
          healthy_(static_cast<size_t>(n_backends), true)
    {}

    int backends() const { return static_cast<int>(depth_.size()); }

    /** Least-loaded healthy backend; -1 when none is healthy. */
    int
    pick() const
    {
        int best = -1;
        for (size_t b = 0; b < depth_.size(); ++b)
            if (healthy_[b] &&
                (best < 0 ||
                 depth_[b] < depth_[static_cast<size_t>(best)]))
                best = static_cast<int>(b);
        return best;
    }

    void
    enqueued(int b)
    {
        ++depth_[static_cast<size_t>(b)];
        ++total_;
        peak_ = std::max(peak_, depth_[static_cast<size_t>(b)]);
    }

    void
    dequeued(int b)
    {
        --depth_[static_cast<size_t>(b)];
        --total_;
    }

    int depth(int b) const { return depth_[static_cast<size_t>(b)]; }
    int totalDepth() const { return total_; }
    int peakDepth() const { return peak_; }

    void
    setHealthy(int b, bool h)
    {
        healthy_[static_cast<size_t>(b)] = h;
    }

    bool healthy(int b) const
    {
        return healthy_[static_cast<size_t>(b)];
    }

    int
    healthyCount() const
    {
        int n = 0;
        for (bool h : healthy_)
            n += h ? 1 : 0;
        return n;
    }

  private:
    std::vector<int> depth_;
    std::vector<bool> healthy_;
    int total_ = 0;
    int peak_ = 0;
};

/** Why a request was shed (or that it was accepted). */
enum class Verdict
{
    Accept,
    ShedThrottle,
    ShedQueueFull,
    ShedDeadline,
    ShedUnavailable,
};

const char *verdictName(Verdict v);

/** Admission/lifecycle counters (the conservation ledger). */
struct AdmissionStats
{
    uint64_t offered = 0;
    uint64_t accepted = 0;
    uint64_t shedThrottle = 0;
    uint64_t shedQueueFull = 0;
    uint64_t shedDeadline = 0;
    uint64_t shedUnavailable = 0;

    /** @name Post-acceptance lifecycle (maintained by the dataflow)
     * @{ */
    uint64_t completed = 0;
    /** Completions inside the deadline budget — the goodput. */
    uint64_t completedInDeadline = 0;
    /** Accepted requests re-routed off a crashed backend. */
    uint64_t redispatched = 0;
    /** Accepted requests dropped at a crash with no healthy target. */
    uint64_t abandoned = 0;
    /** @} */

    uint64_t
    shed() const
    {
        return shedThrottle + shedQueueFull + shedDeadline +
               shedUnavailable;
    }

    /** offered == accepted + shed, at every instant. */
    bool
    conserved() const
    {
        return offered == accepted + shed();
    }

    /** accepted == completed + abandoned, after drain. */
    bool
    drained() const
    {
        return accepted == completed + abandoned;
    }
};

struct AdmissionConfig
{
    /** Token-bucket admit rate, requests/s; 0 disables the throttle. */
    double tokenRatePerSec = 0.0;
    /** Bucket burst capacity, tokens. */
    double tokenBurst = 32.0;
    /** Max outstanding requests per backend (queued + in service). */
    int queueCap = 64;
    /** Shed requests whose deadline the queue estimate already
     *  overruns; false = admit and let them expire (for ablation). */
    bool deadlineShedding = true;

    /** Empty string when valid; otherwise names the offending field. */
    std::string validate() const;
};

class AdmissionController
{
  public:
    AdmissionController(const AdmissionConfig &cfg, LoadBalancer &lb)
        : cfg_(cfg), lb_(lb),
          bucket_(cfg.tokenRatePerSec, cfg.tokenBurst)
    {}

    /**
     * The admission decision for a request arriving at @p now with
     * absolute deadline @p deadline_s and an estimated uncontended
     * service time of @p est_service_s. On Accept, @p backend_out is
     * the chosen backend and its depth is already charged; every
     * other verdict leaves all depths untouched.
     */
    Verdict
    offer(double now, double deadline_s, double est_service_s,
          int *backend_out)
    {
        ++stats_.offered;
        if (lb_.healthyCount() == 0) {
            ++stats_.shedUnavailable;
            return Verdict::ShedUnavailable;
        }
        if (!bucket_.tryTake(now)) {
            ++stats_.shedThrottle;
            return Verdict::ShedThrottle;
        }
        const int b = lb_.pick();
        if (lb_.depth(b) >= cfg_.queueCap) {
            ++stats_.shedQueueFull;
            return Verdict::ShedQueueFull;
        }
        if (cfg_.deadlineShedding) {
            const double wait_est =
                static_cast<double>(lb_.depth(b)) * est_service_s;
            if (now + wait_est + est_service_s > deadline_s) {
                ++stats_.shedDeadline;
                return Verdict::ShedDeadline;
            }
        }
        lb_.enqueued(b);
        ++stats_.accepted;
        *backend_out = b;
        return Verdict::Accept;
    }

    AdmissionStats &stats() { return stats_; }
    const AdmissionStats &stats() const { return stats_; }
    TokenBucket &bucket() { return bucket_; }
    const AdmissionConfig &config() const { return cfg_; }

  private:
    AdmissionConfig cfg_;
    LoadBalancer &lb_;
    TokenBucket bucket_;
    AdmissionStats stats_;
};

} // namespace ndp::core::serve
