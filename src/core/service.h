/**
 * @file
 * PhotoService: the end-to-end functional photo storage system.
 *
 * Ties together the drifting photo world, the vision model, the label
 * database, and Check-N-Run delta distribution into the full lifecycle
 * of §3.1 / Fig. 7: uploads get online-inferred labels, the label
 * index serves search, FT-DMP fine-tuning refreshes the model against
 * drift (sharding feature extraction across simulated PipeStores), and
 * offline inference refreshes stale labels afterwards.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "core/delta.h"
#include "core/sched/job.h"
#include "data/backbone.h"
#include "data/profiles.h"
#include "data/world.h"
#include "storage/label_db.h"

namespace ndp::core {

class PhotoService
{
  public:
    struct Config
    {
        data::DatasetProfile profile = data::imagenet1kProfile();
        /** PipeStores the functional FT-DMP shards features across. */
        int nPipeStores = 4;
        /** Pipeline runs for fine-tuning (N_run). */
        int nRun = 1;
        uint64_t seed = 7;
        /**
         * PipeStores treated as crashed during fineTune(): their
         * feature-extraction shards are re-assigned round-robin to the
         * surviving stores (FT-DMP shares no weights, so recovery is
         * pure work re-assignment, §5.1). All stores crashed = the
         * whole curated set is lost and the model stays unchanged.
         */
        std::vector<int> crashedStores;
    };

    struct FineTuneOutcome
    {
        int epochs = 0;
        double top1Before = 0.0;
        double top1After = 0.0;
        double top5After = 0.0;
        /** Feature bytes the PipeStores would ship to the Tuner. */
        uint64_t featureBytes = 0;
        /** Per-store shard sizes actually extracted. */
        std::vector<size_t> shardSizes;
        /** Check-N-Run delta size, bytes. */
        size_t deltaBytes = 0;
        /** Full fp32 model size, bytes. */
        size_t fullModelBytes = 0;
        double deltaReduction = 0.0;
        int newModelVersion = 0;
        /** Version the delta chains against (newModelVersion - 1). */
        int baseVersion = 0;
        /** Images re-assigned from crashed stores to survivors. */
        size_t redispatchedImages = 0;
        /** Simulated seconds to ship every feature shard to the Tuner
         *  over the network fabric (stores contend for its ingress). */
        double featureShipSeconds = 0.0;
        /** The encoded delta, ready for distributeDelta(). */
        ModelDelta delta;
    };

    /** Result of pushing one delta to every PipeStore replica. */
    struct DeltaDistOutcome
    {
        /** Replicas upgraded by the delta itself. */
        int applied = 0;
        /** Pushes retransmitted after a simulated loss. */
        int retransmissions = 0;
        /** Replicas recovered via a full-checkpoint fallback. */
        int fullFallbacks = 0;
        /** Simulated seconds to push every copy (lost, delivered, and
         *  fallback checkpoints) over the network fabric. */
        double pushSeconds = 0.0;
        /** Final per-store status. */
        std::vector<DeltaPushStatus> status;

        bool
        allCurrent() const
        {
            for (DeltaPushStatus s : status)
                if (s != DeltaPushStatus::Applied &&
                    s != DeltaPushStatus::AlreadyCurrent)
                    return false;
            return true;
        }
    };

    explicit PhotoService(const Config &cfg);

    /** Train the day-0 model and label the whole pool with it. */
    void bootstrap();

    /** One day passes: uploads arrive and are online-inferred. */
    void advanceDay();
    void advanceDays(int days);

    /** Current-model accuracy on a fresh current-distribution test. */
    nn::EvalResult evaluateCurrentModel(size_t test_n = 2000);

    /**
     * FT-DMP fine-tuning: curate a recency-biased training set, shard
     * feature extraction across the simulated PipeStores, train the
     * classifier Tuner-side (optionally in nRun pipelined runs), bump
     * the model version, and encode the Check-N-Run delta.
     */
    FineTuneOutcome fineTune();

    /**
     * Offline inference: relabel every stored photo with the current
     * model. @return number of labels that changed.
     */
    size_t refreshLabels();

    /**
     * Describe this service's nightly FT-DMP fine-tune as a
     * schedulable cluster job (core/sched/cluster.h): the performance
     * twin of fineTune(), sized to the current photo pool. The caller
     * assigns stores (e.g. from planJobs()) before submitting.
     */
    sched::JobDesc fineTuneJobDesc(const std::string &name,
                                   int priority = 0) const;

    /**
     * Describe this service's live request traffic as a schedulable
     * open-loop serving job (core/serve): the user population is
     * sized to the current photo pool and the upload/query split
     * defaults to the serving layer's photo-traffic shape. The caller
     * assigns stores and tunes rates/spikes before submitting —
     * typically colocated with fineTuneJobDesc() so serving contends
     * with the nightly fine-tune.
     */
    sched::JobDesc servingJobDesc(const std::string &name,
                                  int priority = 0) const;

    /**
     * Push @p delta (chained against @p base_version) to every
     * PipeStore replica over a lossy channel: each push is lost with
     * @p loss_probability (seeded draws, deterministic), retried up
     * to five times, and a replica that cannot be reconciled by delta
     * (exhausted retries or a version mismatch) is recovered with a
     * full-checkpoint fallback — the push must converge, typed, never
     * silently leave a store stale.
     */
    DeltaDistOutcome distributeDelta(const ModelDelta &delta,
                                     int base_version, int new_version,
                                     double loss_probability = 0.0);

    /** Per-store model replicas delta distribution maintains. */
    const std::vector<PipeStoreReplica> &replicas() const
    {
        return replicas_;
    }

    /** Photo ids currently indexed under @p label. */
    std::vector<uint64_t> search(int label) const;

    int modelVersion() const { return model_->version; }
    const storage::LabelDatabase &labels() const { return labelDb; }
    data::PhotoWorld &world() { return *world_; }
    data::VisionModel &model() { return *model_; }
    const Config &config() const { return cfg; }

    /** Photos whose stored label came from an older model version. */
    size_t outdatedLabelCount() const;

  private:
    void labelRange(size_t first_idx, size_t last_idx);

    Config cfg;
    std::unique_ptr<data::PhotoWorld> world_;
    std::unique_ptr<data::VisionModel> model_;
    storage::LabelDatabase labelDb;
    std::vector<PipeStoreReplica> replicas_;
    Rng rng;
    /** Pool index up to which photos have been labeled. */
    size_t labeledUpTo = 0;
};

} // namespace ndp::core
