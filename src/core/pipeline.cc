#include "core/pipeline.h"

#include <algorithm>
#include <cassert>

namespace ndp::core {

namespace {

/** Next batch size: min(batch, left). */
int
takeBatch(int batch, uint64_t left)
{
    return static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(batch), left));
}

} // namespace

Pipeline::Pipeline(sim::Simulator &s, PipelineSpec spec,
                   std::vector<ProducerSpec> producers)
    : sim_(s), spec_(std::move(spec)), producers_(std::move(producers)),
      feeders_(s), loaded_(s, spec_.depth), ready_(s, spec_.depth)
{
    assert(!producers_.empty() && "pipeline needs at least one producer");
    assert(spec_.batch >= 1);
    assert(spec_.nRun >= 1);
    for (auto &p : producers_)
        assert(p.runItems.size() ==
                   static_cast<size_t>(spec_.nRun) &&
               "producer shares must cover every run");
}

void
Pipeline::spawn()
{
    if (!spec_.pipelined) {
        if (spec_.done)
            spec_.done->add(1);
        sim_.spawn(serialProc());
        return;
    }
    feeders_.add(static_cast<int>(producers_.size()));
    sendq_.resize(producers_.size());
    for (size_t i = 0; i < producers_.size(); ++i) {
        if (wireLegActive(producers_[i])) {
            sendq_[i] = std::make_unique<sim::Channel<PipeBatch>>(
                sim_, 1);
            feeders_.add(1);
            sim_.spawn(senderProc(i));
        }
        sim_.spawn(producerProc(i));
    }
    // Stores with a crash anywhere in their schedule never volunteer
    // for re-dispatch duty — they would abandon the recovered work too.
    if (spec_.recovery &&
        !(spec_.faults &&
          spec_.faults->crashScheduled(spec_.faultStoreBase))) {
        feeders_.add(1);
        sim_.spawn(redispatchProc());
    }
    sim_.spawn(closerProc());
    sim_.spawn(cpuProc());
    if (spec_.done)
        spec_.done->add(spec_.gpuWorkers);
    for (int g = 0; g < spec_.gpuWorkers; ++g)
        sim_.spawn(gpuProc());
}

sim::Task
Pipeline::producerProc(size_t idx)
{
    ProducerSpec &p = producers_[idx];
    // Fault hooks are guarded on `inj`: an unarmed pipeline performs no
    // RNG draws and no extra awaits, so the event sequence is byte-for-
    // byte the fault-free one (the zero-cost rule of sim/fault.h).
    sim::FaultInjector *inj = spec_.faults;
    const int fstore = spec_.faultStoreBase + static_cast<int>(idx);
    bool dead = false;
    int deadRun = 0;
    uint64_t deadLeft = 0;
    for (int r = 0; r < spec_.nRun && !dead; ++r) {
        if (spec_.runGate) {
            if (sim::WaitGroup *gate = spec_.runGate(r))
                co_await gate->wait();
        }
        uint64_t left = p.runItems[static_cast<size_t>(r)];
        while (left > 0) {
            if (inj) {
                if (inj->crashed(fstore, sim_.now())) {
                    dead = true;
                } else if (double d =
                               inj->stallDelay(fstore, sim_.now());
                           d > 0.0) {
                    inj->report().degradedS += d;
                    co_await sim_.delay(d);
                    dead = inj->crashed(fstore, sim_.now());
                }
                if (dead) {
                    deadRun = r;
                    deadLeft = left;
                    break;
                }
            }
            int n = takeBatch(spec_.batch, left);
            if (p.disk && spec_.readBytesPerItem > 0.0) {
                if (inj) {
                    // Failed object-store reads retry with bounded
                    // exponential backoff; exhausting the budget
                    // escalates the store to dead (crash semantics).
                    double backoff = inj->plan().ioRetryBackoffS;
                    int failures = 0;
                    while (inj->drawReadError(fstore)) {
                        if (++failures > inj->plan().ioRetryLimit) {
                            inj->declareDead(fstore);
                            dead = inj->crashed(fstore, sim_.now());
                            break;
                        }
                        ++inj->report().ioRetries;
                        inj->report().degradedS += backoff;
                        co_await sim_.delay(backoff);
                        backoff *= 2.0;
                    }
                    if (dead) {
                        deadRun = r;
                        deadLeft = left;
                        break;
                    }
                }
                double bytes = spec_.readBytesPerItem * n;
                metrics_.readS += p.disk->readServiceTime(bytes);
                metrics_.readBytes += bytes;
                co_await p.disk->read(bytes);
            }
            left -= static_cast<uint64_t>(n);
            if (sendq_[idx])
                co_await sendq_[idx]->put(PipeBatch{r, n});
            else
                co_await loaded_.put(PipeBatch{r, n});
        }
    }
    if (sendq_[idx])
        sendq_[idx]->close();
    if (dead) {
        // Spill the unread remainder — this run's leftover plus every
        // future run's share. In-flight batches were already read and
        // drain through the pipeline normally.
        std::vector<sim::ShardSpill> rest;
        uint64_t total = 0;
        if (deadLeft > 0) {
            rest.push_back({deadRun, deadLeft});
            total += deadLeft;
        }
        for (int r = deadRun + 1; r < spec_.nRun; ++r) {
            uint64_t items = p.runItems[static_cast<size_t>(r)];
            if (items > 0) {
                rest.push_back({r, items});
                total += items;
            }
        }
        if (spec_.recovery) {
            co_await spec_.recovery->producerCrashed(std::move(rest));
        } else if (total > 0) {
            inj->noteUnrecovered(sim::FaultClass::StoreCrash, total);
        }
    } else if (spec_.recovery) {
        co_await spec_.recovery->producerDone();
    }
    feeders_.done();
}

/**
 * Per-producer wire sender: double-buffers the front stage so the
 * next disk read overlaps the in-flight transfer. Without it, max-min
 * fair sharing convoys equal producers into lock-step — every flow
 * finishes at once and the shared downlink idles while all producers
 * read — which no real NIC with async send queues would do.
 */
sim::Task
Pipeline::senderProc(size_t idx)
{
    ProducerSpec &p = producers_[idx];
    sim::Channel<PipeBatch> &q = *sendq_[idx];
    while (true) {
        auto b = co_await q.get();
        if (!b)
            break;
        double bytes = spec_.wireBytesPerItem * b->n;
        metrics_.transferS += spec_.fabric->serviceTime(
            p.node, spec_.wireDst, bytes);
        metrics_.wireBytes += bytes;
        co_await spec_.fabric->transfer(p.node, spec_.wireDst, bytes,
                                        spec_.wireClass);
        co_await loaded_.put(*b);
    }
    feeders_.done();
}

/**
 * Recovery feeder: turns WorkOrders re-dispatched by the cluster's
 * RecoveryCoordinator into regular front-stage work on this store's
 * own disk (photos are replicated, so the survivor reads its local
 * copy). Recovery traffic is not re-faulted — the orders are already
 * the remedy, and conservation (`itemsDone + itemsLost == total`)
 * must hold once the coordinator has spoken.
 */
sim::Task
Pipeline::redispatchProc()
{
    sim::Channel<sim::WorkOrder> &orders = spec_.recovery->orders();
    ProducerSpec &p = producers_[0];
    while (true) {
        auto o = co_await orders.get();
        if (!o)
            break;
        if (p.disk && spec_.readBytesPerItem > 0.0) {
            double bytes = spec_.readBytesPerItem * o->items;
            metrics_.readS += p.disk->readServiceTime(bytes);
            metrics_.readBytes += bytes;
            co_await p.disk->read(bytes);
        }
        if (spec_.fabric && spec_.wireDst != net::kNoNode &&
            spec_.wireBytesPerItem > 0.0 &&
            p.node != net::kNoNode) {
            double bytes = spec_.wireBytesPerItem * o->items;
            metrics_.transferS += spec_.fabric->serviceTime(
                p.node, spec_.wireDst, bytes);
            metrics_.wireBytes += bytes;
            co_await spec_.fabric->transfer(
                p.node, spec_.wireDst, bytes, spec_.wireClass);
        }
        co_await loaded_.put(PipeBatch{o->run, o->items});
    }
    feeders_.done();
}

sim::Task
Pipeline::closerProc()
{
    co_await feeders_.wait();
    loaded_.close();
}

sim::Task
Pipeline::cpuProc()
{
    while (true) {
        auto b = co_await loaded_.get();
        if (!b)
            break;
        for (const CpuStageOp &op : spec_.cpuOps) {
            if (op.workPerItem <= 0.0 || !spec_.cpu)
                continue;
            double t = op.workPerItem * b->n / op.rate;
            co_await spec_.cpu->run(op.cores, t);
            if (op.kind == CpuStageOp::Kind::Decompress)
                metrics_.decompressS += t;
            else
                metrics_.preprocessS += t;
        }
        co_await ready_.put(*b);
    }
    ready_.close();
}

sim::Task
Pipeline::gpuProc()
{
    while (true) {
        auto b = co_await ready_.get();
        if (!b)
            break;
        if (spec_.gpu && spec_.computeSecondsPerItem > 0.0) {
            double t = spec_.computeSecondsPerItem * b->n;
            co_await spec_.gpu->compute(t);
            metrics_.computeS += t;
        }
        // A configured ship leg is always crossed (it charges
        // propagation latency even for an empty payload); without
        // endpoints the bytes are only counted.
        if (spec_.shipDst != net::kNoNode ||
            spec_.shipBytesPerItem > 0.0) {
            double bytes = spec_.shipBytesPerItem * b->n;
            metrics_.shipBytes += bytes;
            if (spec_.fabric && spec_.shipSrc != net::kNoNode &&
                spec_.shipDst != net::kNoNode) {
                metrics_.transferS += spec_.fabric->serviceTime(
                    spec_.shipSrc, spec_.shipDst, bytes);
                co_await spec_.fabric->transfer(
                    spec_.shipSrc, spec_.shipDst, bytes,
                    spec_.shipClass);
            }
        }
        if (!spec_.runOut.empty())
            co_await spec_.runOut[static_cast<size_t>(b->run)]->put(b->n);
        metrics_.itemsDone += static_cast<uint64_t>(b->n);
        metrics_.lastItemS = sim_.now();
    }
    if (spec_.done)
        spec_.done->done();
}

/** The unoptimized "Typical" walk: every batch visits all stages back
 *  to back, round-robining over the producers' disks (§3.4). A serial
 *  walk has no peer to re-dispatch to, so a crash types the remainder
 *  as lost instead of spilling it to a coordinator. */
sim::Task
Pipeline::serialProc()
{
    sim::FaultInjector *inj = spec_.faults;
    const int fstore = spec_.faultStoreBase;
    // Keep each disk paired with its producer's fabric node so the
    // wire leg leaves from the server that was just read.
    std::vector<std::pair<hw::Disk *, net::NodeId>> disks;
    for (auto &p : producers_)
        if (p.disk)
            disks.emplace_back(p.disk, p.node);
    size_t turn = 0;
    for (int r = 0; r < spec_.nRun; ++r) {
        if (spec_.runGate) {
            if (sim::WaitGroup *gate = spec_.runGate(r))
                co_await gate->wait();
        }
        uint64_t left = 0;
        for (auto &p : producers_)
            left += p.runItems[static_cast<size_t>(r)];
        while (left > 0) {
            if (inj) {
                bool crashed = inj->crashed(fstore, sim_.now());
                if (!crashed) {
                    if (double d = inj->stallDelay(fstore, sim_.now());
                        d > 0.0) {
                        inj->report().degradedS += d;
                        co_await sim_.delay(d);
                        crashed = inj->crashed(fstore, sim_.now());
                    }
                }
                if (!crashed && spec_.readBytesPerItem > 0.0 &&
                    !disks.empty()) {
                    double backoff = inj->plan().ioRetryBackoffS;
                    int failures = 0;
                    while (inj->drawReadError(fstore)) {
                        if (++failures > inj->plan().ioRetryLimit) {
                            inj->declareDead(fstore);
                            crashed =
                                inj->crashed(fstore, sim_.now());
                            break;
                        }
                        ++inj->report().ioRetries;
                        inj->report().degradedS += backoff;
                        co_await sim_.delay(backoff);
                        backoff *= 2.0;
                    }
                }
                if (crashed) {
                    uint64_t lost = left;
                    for (int rr = r + 1; rr < spec_.nRun; ++rr)
                        for (auto &p : producers_)
                            lost +=
                                p.runItems[static_cast<size_t>(rr)];
                    inj->noteUnrecovered(sim::FaultClass::StoreCrash,
                                         lost);
                    if (spec_.done)
                        spec_.done->done();
                    co_return;
                }
            }
            int n = takeBatch(spec_.batch, left);
            left -= static_cast<uint64_t>(n);
            if (spec_.readBytesPerItem > 0.0 && !disks.empty()) {
                auto [d, src] = disks[turn % disks.size()];
                ++turn;
                double bytes = spec_.readBytesPerItem * n;
                metrics_.readS += d->readServiceTime(bytes);
                metrics_.readBytes += bytes;
                co_await d->read(bytes);
                if (spec_.fabric && spec_.wireDst != net::kNoNode &&
                    spec_.wireBytesPerItem > 0.0 &&
                    src != net::kNoNode) {
                    double wire = spec_.wireBytesPerItem * n;
                    metrics_.transferS += spec_.fabric->serviceTime(
                        src, spec_.wireDst, wire);
                    metrics_.wireBytes += wire;
                    co_await spec_.fabric->transfer(
                        src, spec_.wireDst, wire, spec_.wireClass);
                }
            }
            for (const CpuStageOp &op : spec_.cpuOps) {
                if (op.workPerItem <= 0.0 || !spec_.cpu)
                    continue;
                double t = op.workPerItem * n / op.rate;
                co_await spec_.cpu->run(op.cores, t);
                if (op.kind == CpuStageOp::Kind::Decompress)
                    metrics_.decompressS += t;
                else
                    metrics_.preprocessS += t;
            }
            if (spec_.gpu && spec_.computeSecondsPerItem > 0.0) {
                double t = spec_.computeSecondsPerItem * n;
                co_await spec_.gpu->compute(t);
                metrics_.computeS += t;
            }
            if (spec_.shipDst != net::kNoNode ||
                spec_.shipBytesPerItem > 0.0) {
                double bytes = spec_.shipBytesPerItem * n;
                metrics_.shipBytes += bytes;
                if (spec_.fabric && spec_.shipSrc != net::kNoNode &&
                    spec_.shipDst != net::kNoNode) {
                    metrics_.transferS += spec_.fabric->serviceTime(
                        spec_.shipSrc, spec_.shipDst, bytes);
                    co_await spec_.fabric->transfer(
                        spec_.shipSrc, spec_.shipDst, bytes,
                        spec_.shipClass);
                }
            }
            if (!spec_.runOut.empty())
                co_await spec_.runOut[static_cast<size_t>(r)]->put(n);
            metrics_.itemsDone += static_cast<uint64_t>(n);
            metrics_.lastItemS = sim_.now();
        }
    }
    if (spec_.done)
        spec_.done->done();
}

void
Pipeline::finalize()
{
    if (spec_.cpu)
        metrics_.cpuUtil = spec_.cpu->utilization();
    if (spec_.gpu)
        metrics_.gpuUtil = spec_.gpu->utilization();
    double disk_util = 0.0;
    int n_disks = 0;
    for (auto &p : producers_) {
        if (p.disk) {
            disk_util += p.disk->utilization();
            ++n_disks;
        }
    }
    metrics_.diskUtil = n_disks > 0 ? disk_util / n_disks : 0.0;
}

} // namespace ndp::core
