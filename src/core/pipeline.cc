#include "core/pipeline.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "core/sched/scheduler.h"

namespace ndp::core {

namespace {

/** Next batch size: min(batch, left). */
int
takeBatch(int batch, uint64_t left)
{
    return static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(batch), left));
}

} // namespace

Pipeline::Pipeline(sim::Simulator &s, PipelineSpec spec,
                   std::vector<ProducerSpec> producers)
    : sim_(s), spec_(std::move(spec)), producers_(std::move(producers)),
      feeders_(s), loaded_(s, spec_.depth), ready_(s, spec_.depth),
      gauges_(spec_.trace)
{
    assert(!producers_.empty() && "pipeline needs at least one producer");
    assert(spec_.batch >= 1);
    assert(spec_.nRun >= 1);
    for (auto &p : producers_)
        assert(p.runItems.size() ==
                   static_cast<size_t>(spec_.nRun) &&
               "producer shares must cover every run");
}

void
Pipeline::setupTrace()
{
    obs::Tracer *tr = spec_.trace;
    if (!tr)
        return;
    // Intern only tracks that can receive events so traces have no
    // blank rows; accessors return 0 for the rest, and every guard
    // that would use such a track is gated on the same condition.
    const bool wire = spec_.fabric && spec_.wireDst != net::kNoNode &&
                      spec_.wireBytesPerItem > 0.0;
    trkDisk_.resize(producers_.size(), 0);
    trkWire_.resize(producers_.size(), 0);
    for (size_t i = 0; i < producers_.size(); ++i) {
        if ((producers_[i].disk && spec_.readBytesPerItem > 0.0) ||
            spec_.faults)
            trkDisk_[i] = tr->track(nodeOf(i), "disk");
        if (wire)
            trkWire_[i] = tr->track(nodeOf(i), "wire");
    }
    if (spec_.cpu && !spec_.cpuOps.empty())
        trkCpu_ = tr->track(spec_.traceNode, "cpu");
    if (spec_.fabric && spec_.shipSrc != net::kNoNode &&
        spec_.shipDst != net::kNoNode)
        trkShip_ = tr->track(spec_.traceNode, "ship");
    if (spec_.faults || spec_.recovery)
        trkFault_ = tr->track(spec_.traceNode, "faults");
    trkGpu_.resize(static_cast<size_t>(spec_.gpuWorkers), 0);
    if (spec_.gpu && spec_.computeSecondsPerItem > 0.0)
        for (int g = 0; g < spec_.gpuWorkers; ++g)
            trkGpu_[static_cast<size_t>(g)] =
                tr->track(spec_.traceNode,
                          spec_.gpuWorkers > 1
                              ? "gpu" + std::to_string(g)
                              : "gpu");
    if (spec_.pipelined) {
        gauges_.add(spec_.traceNode, "queue.loaded", [this] {
            return static_cast<double>(loaded_.size());
        });
        gauges_.add(spec_.traceNode, "queue.ready", [this] {
            return static_cast<double>(ready_.size());
        });
    }
}

void
Pipeline::spawn()
{
    setupTrace();
    if (!spec_.pipelined) {
        if (spec_.done)
            spec_.done->add(1);
        sim_.spawn(serialProc());
        return;
    }
    feeders_.add(static_cast<int>(producers_.size()));
    sendq_.resize(producers_.size());
    for (size_t i = 0; i < producers_.size(); ++i) {
        if (wireLegActive(producers_[i])) {
            sendq_[i] = std::make_unique<sim::Channel<PipeBatch>>(
                sim_, 1);
            feeders_.add(1);
            sim_.spawn(senderProc(i));
        }
        sim_.spawn(producerProc(i));
    }
    // Stores with a crash anywhere in their schedule never volunteer
    // for re-dispatch duty — they would abandon the recovered work too.
    if (spec_.recovery &&
        !(spec_.faults &&
          spec_.faults->crashScheduled(spec_.faultStoreBase))) {
        feeders_.add(1);
        sim_.spawn(redispatchProc());
    }
    sim_.spawn(closerProc());
    sim_.spawn(cpuProc());
    if (spec_.done)
        spec_.done->add(spec_.gpuWorkers);
    for (int g = 0; g < spec_.gpuWorkers; ++g)
        sim_.spawn(gpuProc(g));
}

sim::Task
Pipeline::producerProc(size_t idx)
{
    ProducerSpec &p = producers_[idx];
    // Fault hooks are guarded on `inj`: an unarmed pipeline performs no
    // RNG draws and no extra awaits, so the event sequence is byte-for-
    // byte the fault-free one (the zero-cost rule of sim/fault.h).
    sim::FaultInjector *inj = spec_.faults;
    const int fstore = spec_.faultStoreBase + static_cast<int>(idx);
    bool dead = false;
    int deadRun = 0;
    uint64_t deadLeft = 0;
    for (int r = 0; r < spec_.nRun && !dead; ++r) {
        if (spec_.runGate) {
            if (sim::WaitGroup *gate = spec_.runGate(r))
                co_await gate->wait();
        }
        uint64_t left = p.runItems[static_cast<size_t>(r)];
        while (left > 0) {
            // Batch-boundary preemption point: completes synchronously
            // (no suspension) whenever the job is runnable.
            if (spec_.sched)
                co_await spec_.sched->yield(spec_.jobId);
            if (inj) {
                if (inj->crashed(fstore, sim_.now())) {
                    dead = true;
                } else if (double d =
                               inj->stallDelay(fstore, sim_.now());
                           d > 0.0) {
                    inj->report().degradedS += d;
                    {
                        obs::SpanGuard sg(spec_.trace, sim_,
                                          dTrk(idx), obs::Cat::Stall,
                                          "stall");
                        co_await sim_.delay(d);
                    }
                    dead = inj->crashed(fstore, sim_.now());
                }
                if (dead) {
                    deadRun = r;
                    deadLeft = left;
                    break;
                }
            }
            int n = takeBatch(spec_.batch, left);
            if (p.disk && spec_.readBytesPerItem > 0.0) {
                if (inj) {
                    // Failed object-store reads retry with bounded
                    // exponential backoff; exhausting the budget
                    // escalates the store to dead (crash semantics).
                    double backoff = inj->plan().ioRetryBackoffS;
                    int failures = 0;
                    while (inj->drawReadError(fstore)) {
                        if (++failures > inj->plan().ioRetryLimit) {
                            inj->declareDead(fstore);
                            dead = inj->crashed(fstore, sim_.now());
                            break;
                        }
                        ++inj->report().ioRetries;
                        inj->report().degradedS += backoff;
                        if (spec_.trace)
                            spec_.trace->instant(trkFault_,
                                                 obs::Cat::Fault,
                                                 "read-error",
                                                 sim_.now());
                        {
                            obs::SpanGuard sg(
                                spec_.trace, sim_, dTrk(idx),
                                obs::Cat::Stall, "io-retry");
                            co_await sim_.delay(backoff);
                        }
                        backoff *= 2.0;
                    }
                    if (failures > 0 && !dead)
                        inj->noteIoRecovered(fstore);
                    if (dead) {
                        deadRun = r;
                        deadLeft = left;
                        break;
                    }
                }
                double bytes = spec_.readBytesPerItem * n;
                metrics_.readS += p.disk->readServiceTime(bytes);
                metrics_.readBytes += bytes;
                obs::SpanGuard sg(
                    spec_.trace, sim_, dTrk(idx), obs::Cat::Disk,
                    "read",
                    {{"n", static_cast<double>(n)}, {"bytes", bytes}});
                co_await p.disk->read(bytes);
            }
            left -= static_cast<uint64_t>(n);
            if (sendq_[idx])
                co_await sendq_[idx]->put(PipeBatch{r, n});
            else
                co_await loaded_.put(PipeBatch{r, n});
        }
    }
    if (sendq_[idx])
        sendq_[idx]->close();
    if (dead) {
        // Spill the unread remainder — this run's leftover plus every
        // future run's share. In-flight batches were already read and
        // drain through the pipeline normally.
        std::vector<sim::ShardSpill> rest;
        uint64_t total = 0;
        if (deadLeft > 0) {
            rest.push_back({deadRun, deadLeft});
            total += deadLeft;
        }
        for (int r = deadRun + 1; r < spec_.nRun; ++r) {
            uint64_t items = p.runItems[static_cast<size_t>(r)];
            if (items > 0) {
                rest.push_back({r, items});
                total += items;
            }
        }
        if (spec_.trace)
            spec_.trace->instant(
                trkFault_, obs::Cat::Fault, "crash", sim_.now(),
                {{"spilled", static_cast<double>(total)}});
        if (spec_.recovery) {
            co_await spec_.recovery->producerCrashed(std::move(rest));
        } else if (total > 0) {
            inj->noteUnrecovered(sim::FaultClass::StoreCrash, total);
        }
    } else if (spec_.recovery) {
        co_await spec_.recovery->producerDone();
    }
    feeders_.done();
}

/**
 * Per-producer wire sender: double-buffers the front stage so the
 * next disk read overlaps the in-flight transfer. Without it, max-min
 * fair sharing convoys equal producers into lock-step — every flow
 * finishes at once and the shared downlink idles while all producers
 * read — which no real NIC with async send queues would do.
 */
sim::Task
Pipeline::senderProc(size_t idx)
{
    ProducerSpec &p = producers_[idx];
    sim::Channel<PipeBatch> &q = *sendq_[idx];
    while (true) {
        auto b = co_await q.get();
        if (!b)
            break;
        double bytes = spec_.wireBytesPerItem * b->n;
        metrics_.transferS += spec_.fabric->serviceTime(
            p.node, spec_.wireDst, bytes);
        metrics_.wireBytes += bytes;
        {
            obs::SpanGuard sg(spec_.trace, sim_, wTrk(idx),
                              obs::Cat::Wire, "send",
                              {{"n", static_cast<double>(b->n)},
                               {"bytes", bytes}});
            co_await spec_.fabric->transfer(p.node, spec_.wireDst,
                                            bytes, spec_.wireClass);
        }
        co_await loaded_.put(*b);
    }
    feeders_.done();
}

/**
 * Recovery feeder: turns WorkOrders re-dispatched by the cluster's
 * RecoveryCoordinator into regular front-stage work on this store's
 * own disk (photos are replicated, so the survivor reads its local
 * copy). Recovery traffic is not re-faulted — the orders are already
 * the remedy, and conservation (`itemsDone + itemsLost == total`)
 * must hold once the coordinator has spoken.
 */
sim::Task
Pipeline::redispatchProc()
{
    sim::Channel<sim::WorkOrder> &orders = spec_.recovery->orders();
    ProducerSpec &p = producers_[0];
    while (true) {
        auto o = co_await orders.get();
        if (!o)
            break;
        if (spec_.trace)
            spec_.trace->instant(
                trkFault_, obs::Cat::Fault, "redispatch", sim_.now(),
                {{"items", static_cast<double>(o->items)}});
        if (p.disk && spec_.readBytesPerItem > 0.0) {
            double bytes = spec_.readBytesPerItem * o->items;
            metrics_.readS += p.disk->readServiceTime(bytes);
            metrics_.readBytes += bytes;
            obs::SpanGuard sg(
                spec_.trace, sim_, dTrk(0), obs::Cat::Disk, "read",
                {{"n", static_cast<double>(o->items)},
                 {"bytes", bytes}});
            co_await p.disk->read(bytes);
        }
        if (spec_.fabric && spec_.wireDst != net::kNoNode &&
            spec_.wireBytesPerItem > 0.0 &&
            p.node != net::kNoNode) {
            double bytes = spec_.wireBytesPerItem * o->items;
            metrics_.transferS += spec_.fabric->serviceTime(
                p.node, spec_.wireDst, bytes);
            metrics_.wireBytes += bytes;
            obs::SpanGuard sg(spec_.trace, sim_, wTrk(0),
                              obs::Cat::Wire, "send",
                              {{"n", static_cast<double>(o->items)},
                               {"bytes", bytes}});
            co_await spec_.fabric->transfer(
                p.node, spec_.wireDst, bytes, spec_.wireClass);
        }
        co_await loaded_.put(PipeBatch{o->run, o->items});
    }
    feeders_.done();
}

sim::Task
Pipeline::closerProc()
{
    co_await feeders_.wait();
    loaded_.close();
}

sim::Task
Pipeline::cpuProc()
{
    while (true) {
        auto b = co_await loaded_.get();
        if (!b)
            break;
        if (spec_.sched)
            co_await spec_.sched->yield(spec_.jobId);
        for (const CpuStageOp &op : spec_.cpuOps) {
            if (op.workPerItem <= 0.0 || !spec_.cpu)
                continue;
            double t = op.workPerItem * b->n / op.rate;
            {
                obs::SpanGuard sg(
                    spec_.trace, sim_, trkCpu_, obs::Cat::Cpu,
                    op.kind == CpuStageOp::Kind::Decompress
                        ? "decompress"
                        : "preprocess",
                    {{"n", static_cast<double>(b->n)}});
                co_await spec_.cpu->run(op.cores, t);
            }
            if (op.kind == CpuStageOp::Kind::Decompress)
                metrics_.decompressS += t;
            else
                metrics_.preprocessS += t;
        }
        co_await ready_.put(*b);
    }
    ready_.close();
}

sim::Task
Pipeline::gpuProc(int worker)
{
    while (true) {
        auto b = co_await ready_.get();
        if (!b)
            break;
        if (spec_.sched)
            co_await spec_.sched->yield(spec_.jobId);
        if (spec_.gpu && spec_.computeSecondsPerItem > 0.0) {
            double t = spec_.computeSecondsPerItem * b->n;
            {
                obs::SpanGuard sg(
                    spec_.trace, sim_, gTrk(worker), obs::Cat::Gpu,
                    "compute", {{"n", static_cast<double>(b->n)}});
                co_await spec_.gpu->compute(t);
            }
            metrics_.computeS += t;
            if (spec_.sched)
                spec_.sched->charge(spec_.jobId, t);
        }
        // A configured ship leg is always crossed (it charges
        // propagation latency even for an empty payload); without
        // endpoints the bytes are only counted.
        if (spec_.shipDst != net::kNoNode ||
            spec_.shipBytesPerItem > 0.0) {
            double bytes = spec_.shipBytesPerItem * b->n;
            metrics_.shipBytes += bytes;
            if (spec_.fabric && spec_.shipSrc != net::kNoNode &&
                spec_.shipDst != net::kNoNode) {
                metrics_.transferS += spec_.fabric->serviceTime(
                    spec_.shipSrc, spec_.shipDst, bytes);
                obs::SpanGuard sg(
                    spec_.trace, sim_, trkShip_, obs::Cat::Wire,
                    "ship", {{"bytes", bytes}});
                co_await spec_.fabric->transfer(
                    spec_.shipSrc, spec_.shipDst, bytes,
                    spec_.shipClass);
            }
        }
        if (!spec_.runOut.empty())
            co_await spec_.runOut[static_cast<size_t>(b->run)]->put(b->n);
        metrics_.itemsDone += static_cast<uint64_t>(b->n);
        metrics_.lastItemS = sim_.now();
    }
    if (spec_.done)
        spec_.done->done();
}

/** The unoptimized "Typical" walk: every batch visits all stages back
 *  to back, round-robining over the producers' disks (§3.4). A serial
 *  walk has no peer to re-dispatch to, so a crash types the remainder
 *  as lost instead of spilling it to a coordinator. */
sim::Task
Pipeline::serialProc()
{
    sim::FaultInjector *inj = spec_.faults;
    const int fstore = spec_.faultStoreBase;
    // Keep each disk paired with its producer's fabric node (so the
    // wire leg leaves from the server that was just read) and the
    // producer index (so trace spans land on that server's tracks).
    struct DiskSrc
    {
        hw::Disk *disk;
        net::NodeId node;
        size_t idx;
    };
    std::vector<DiskSrc> disks;
    for (size_t i = 0; i < producers_.size(); ++i)
        if (producers_[i].disk)
            disks.push_back({producers_[i].disk, producers_[i].node, i});
    size_t turn = 0;
    for (int r = 0; r < spec_.nRun; ++r) {
        if (spec_.runGate) {
            if (sim::WaitGroup *gate = spec_.runGate(r))
                co_await gate->wait();
        }
        uint64_t left = 0;
        for (auto &p : producers_)
            left += p.runItems[static_cast<size_t>(r)];
        while (left > 0) {
            if (spec_.sched)
                co_await spec_.sched->yield(spec_.jobId);
            if (inj) {
                bool crashed = inj->crashed(fstore, sim_.now());
                if (!crashed) {
                    if (double d = inj->stallDelay(fstore, sim_.now());
                        d > 0.0) {
                        inj->report().degradedS += d;
                        {
                            obs::SpanGuard sg(spec_.trace, sim_,
                                              dTrk(0),
                                              obs::Cat::Stall,
                                              "stall");
                            co_await sim_.delay(d);
                        }
                        crashed = inj->crashed(fstore, sim_.now());
                    }
                }
                if (!crashed && spec_.readBytesPerItem > 0.0 &&
                    !disks.empty()) {
                    double backoff = inj->plan().ioRetryBackoffS;
                    int failures = 0;
                    while (inj->drawReadError(fstore)) {
                        if (++failures > inj->plan().ioRetryLimit) {
                            inj->declareDead(fstore);
                            crashed =
                                inj->crashed(fstore, sim_.now());
                            break;
                        }
                        ++inj->report().ioRetries;
                        inj->report().degradedS += backoff;
                        if (spec_.trace)
                            spec_.trace->instant(trkFault_,
                                                 obs::Cat::Fault,
                                                 "read-error",
                                                 sim_.now());
                        {
                            obs::SpanGuard sg(
                                spec_.trace, sim_, dTrk(0),
                                obs::Cat::Stall, "io-retry");
                            co_await sim_.delay(backoff);
                        }
                        backoff *= 2.0;
                    }
                    if (failures > 0 && !crashed)
                        inj->noteIoRecovered(fstore);
                }
                if (crashed) {
                    uint64_t lost = left;
                    for (int rr = r + 1; rr < spec_.nRun; ++rr)
                        for (auto &p : producers_)
                            lost +=
                                p.runItems[static_cast<size_t>(rr)];
                    inj->noteUnrecovered(sim::FaultClass::StoreCrash,
                                         lost);
                    if (spec_.trace)
                        spec_.trace->instant(
                            trkFault_, obs::Cat::Fault, "crash",
                            sim_.now(),
                            {{"lost", static_cast<double>(lost)}});
                    if (spec_.done)
                        spec_.done->done();
                    co_return;
                }
            }
            int n = takeBatch(spec_.batch, left);
            left -= static_cast<uint64_t>(n);
            if (spec_.readBytesPerItem > 0.0 && !disks.empty()) {
                auto [d, src, pidx] = disks[turn % disks.size()];
                ++turn;
                double bytes = spec_.readBytesPerItem * n;
                metrics_.readS += d->readServiceTime(bytes);
                metrics_.readBytes += bytes;
                {
                    obs::SpanGuard sg(spec_.trace, sim_, dTrk(pidx),
                                      obs::Cat::Disk, "read",
                                      {{"n", static_cast<double>(n)},
                                       {"bytes", bytes}});
                    co_await d->read(bytes);
                }
                if (spec_.fabric && spec_.wireDst != net::kNoNode &&
                    spec_.wireBytesPerItem > 0.0 &&
                    src != net::kNoNode) {
                    double wire = spec_.wireBytesPerItem * n;
                    metrics_.transferS += spec_.fabric->serviceTime(
                        src, spec_.wireDst, wire);
                    metrics_.wireBytes += wire;
                    obs::SpanGuard sg(spec_.trace, sim_, wTrk(pidx),
                                      obs::Cat::Wire, "send",
                                      {{"n", static_cast<double>(n)},
                                       {"bytes", wire}});
                    co_await spec_.fabric->transfer(
                        src, spec_.wireDst, wire, spec_.wireClass);
                }
            }
            for (const CpuStageOp &op : spec_.cpuOps) {
                if (op.workPerItem <= 0.0 || !spec_.cpu)
                    continue;
                double t = op.workPerItem * n / op.rate;
                {
                    obs::SpanGuard sg(
                        spec_.trace, sim_, trkCpu_, obs::Cat::Cpu,
                        op.kind == CpuStageOp::Kind::Decompress
                            ? "decompress"
                            : "preprocess",
                        {{"n", static_cast<double>(n)}});
                    co_await spec_.cpu->run(op.cores, t);
                }
                if (op.kind == CpuStageOp::Kind::Decompress)
                    metrics_.decompressS += t;
                else
                    metrics_.preprocessS += t;
            }
            if (spec_.gpu && spec_.computeSecondsPerItem > 0.0) {
                double t = spec_.computeSecondsPerItem * n;
                {
                    obs::SpanGuard sg(
                        spec_.trace, sim_, gTrk(0), obs::Cat::Gpu,
                        "compute", {{"n", static_cast<double>(n)}});
                    co_await spec_.gpu->compute(t);
                }
                metrics_.computeS += t;
                if (spec_.sched)
                    spec_.sched->charge(spec_.jobId, t);
            }
            if (spec_.shipDst != net::kNoNode ||
                spec_.shipBytesPerItem > 0.0) {
                double bytes = spec_.shipBytesPerItem * n;
                metrics_.shipBytes += bytes;
                if (spec_.fabric && spec_.shipSrc != net::kNoNode &&
                    spec_.shipDst != net::kNoNode) {
                    metrics_.transferS += spec_.fabric->serviceTime(
                        spec_.shipSrc, spec_.shipDst, bytes);
                    obs::SpanGuard sg(spec_.trace, sim_, trkShip_,
                                      obs::Cat::Wire, "ship",
                                      {{"bytes", bytes}});
                    co_await spec_.fabric->transfer(
                        spec_.shipSrc, spec_.shipDst, bytes,
                        spec_.shipClass);
                }
            }
            if (!spec_.runOut.empty())
                co_await spec_.runOut[static_cast<size_t>(r)]->put(n);
            metrics_.itemsDone += static_cast<uint64_t>(n);
            metrics_.lastItemS = sim_.now();
        }
    }
    if (spec_.done)
        spec_.done->done();
}

void
Pipeline::finalize()
{
    if (spec_.cpu)
        metrics_.cpuUtil = spec_.cpu->utilization();
    if (spec_.gpu)
        metrics_.gpuUtil = spec_.gpu->utilization();
    double disk_util = 0.0;
    int n_disks = 0;
    for (auto &p : producers_) {
        if (p.disk) {
            disk_util += p.disk->utilization();
            ++n_disks;
        }
    }
    metrics_.diskUtil = n_disks > 0 ? disk_util / n_disks : 0.0;
    metrics_.pipelines = 1;
}

} // namespace ndp::core
