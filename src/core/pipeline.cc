#include "core/pipeline.h"

#include <algorithm>
#include <cassert>

namespace ndp::core {

namespace {

/** Next batch size: min(batch, left). */
int
takeBatch(int batch, uint64_t left)
{
    return static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(batch), left));
}

} // namespace

Pipeline::Pipeline(sim::Simulator &s, PipelineSpec spec,
                   std::vector<ProducerSpec> producers)
    : sim_(s), spec_(std::move(spec)), producers_(std::move(producers)),
      feeders_(s), loaded_(s, spec_.depth), ready_(s, spec_.depth)
{
    assert(!producers_.empty() && "pipeline needs at least one producer");
    assert(spec_.batch >= 1);
    assert(spec_.nRun >= 1);
    for (auto &p : producers_)
        assert(p.runItems.size() ==
                   static_cast<size_t>(spec_.nRun) &&
               "producer shares must cover every run");
}

void
Pipeline::spawn()
{
    if (!spec_.pipelined) {
        if (spec_.done)
            spec_.done->add(1);
        sim_.spawn(serialProc());
        return;
    }
    feeders_.add(static_cast<int>(producers_.size()));
    for (size_t i = 0; i < producers_.size(); ++i)
        sim_.spawn(producerProc(i));
    sim_.spawn(closerProc());
    sim_.spawn(cpuProc());
    if (spec_.done)
        spec_.done->add(spec_.gpuWorkers);
    for (int g = 0; g < spec_.gpuWorkers; ++g)
        sim_.spawn(gpuProc());
}

sim::Task
Pipeline::producerProc(size_t idx)
{
    ProducerSpec &p = producers_[idx];
    for (int r = 0; r < spec_.nRun; ++r) {
        if (spec_.runGate) {
            if (sim::WaitGroup *gate = spec_.runGate(r))
                co_await gate->wait();
        }
        uint64_t left = p.runItems[static_cast<size_t>(r)];
        while (left > 0) {
            int n = takeBatch(spec_.batch, left);
            left -= static_cast<uint64_t>(n);
            if (p.disk && spec_.readBytesPerItem > 0.0) {
                double bytes = spec_.readBytesPerItem * n;
                metrics_.readS += p.disk->readServiceTime(bytes);
                metrics_.readBytes += bytes;
                co_await p.disk->read(bytes);
            }
            if (spec_.ingress && spec_.wireBytesPerItem > 0.0) {
                double bytes = spec_.wireBytesPerItem * n;
                metrics_.transferS += spec_.ingress->serviceTime(bytes);
                metrics_.wireBytes += bytes;
                co_await spec_.ingress->transfer(bytes);
            }
            co_await loaded_.put(PipeBatch{r, n});
        }
    }
    feeders_.done();
}

sim::Task
Pipeline::closerProc()
{
    co_await feeders_.wait();
    loaded_.close();
}

sim::Task
Pipeline::cpuProc()
{
    while (true) {
        auto b = co_await loaded_.get();
        if (!b)
            break;
        for (const CpuStageOp &op : spec_.cpuOps) {
            if (op.workPerItem <= 0.0 || !spec_.cpu)
                continue;
            double t = op.workPerItem * b->n / op.rate;
            co_await spec_.cpu->run(op.cores, t);
            if (op.kind == CpuStageOp::Kind::Decompress)
                metrics_.decompressS += t;
            else
                metrics_.preprocessS += t;
        }
        co_await ready_.put(*b);
    }
    ready_.close();
}

sim::Task
Pipeline::gpuProc()
{
    while (true) {
        auto b = co_await ready_.get();
        if (!b)
            break;
        if (spec_.gpu && spec_.computeSecondsPerItem > 0.0) {
            double t = spec_.computeSecondsPerItem * b->n;
            co_await spec_.gpu->compute(t);
            metrics_.computeS += t;
        }
        // A ship link is always crossed (it charges propagation
        // latency even for an empty payload); without a link the
        // bytes are only counted.
        if (spec_.shipLink || spec_.shipBytesPerItem > 0.0) {
            double bytes = spec_.shipBytesPerItem * b->n;
            metrics_.shipBytes += bytes;
            if (spec_.shipLink) {
                metrics_.transferS += spec_.shipLink->serviceTime(bytes);
                co_await spec_.shipLink->transfer(bytes);
            }
        }
        if (!spec_.runOut.empty())
            co_await spec_.runOut[static_cast<size_t>(b->run)]->put(b->n);
        metrics_.itemsDone += static_cast<uint64_t>(b->n);
        metrics_.lastItemS = sim_.now();
    }
    if (spec_.done)
        spec_.done->done();
}

/** The unoptimized "Typical" walk: every batch visits all stages back
 *  to back, round-robining over the producers' disks (§3.4). */
sim::Task
Pipeline::serialProc()
{
    std::vector<hw::Disk *> disks;
    for (auto &p : producers_)
        if (p.disk)
            disks.push_back(p.disk);
    size_t turn = 0;
    for (int r = 0; r < spec_.nRun; ++r) {
        if (spec_.runGate) {
            if (sim::WaitGroup *gate = spec_.runGate(r))
                co_await gate->wait();
        }
        uint64_t left = 0;
        for (auto &p : producers_)
            left += p.runItems[static_cast<size_t>(r)];
        while (left > 0) {
            int n = takeBatch(spec_.batch, left);
            left -= static_cast<uint64_t>(n);
            if (spec_.readBytesPerItem > 0.0 && !disks.empty()) {
                hw::Disk &d = *disks[turn % disks.size()];
                ++turn;
                double bytes = spec_.readBytesPerItem * n;
                metrics_.readS += d.readServiceTime(bytes);
                metrics_.readBytes += bytes;
                co_await d.read(bytes);
                if (spec_.ingress && spec_.wireBytesPerItem > 0.0) {
                    double wire = spec_.wireBytesPerItem * n;
                    metrics_.transferS +=
                        spec_.ingress->serviceTime(wire);
                    metrics_.wireBytes += wire;
                    co_await spec_.ingress->transfer(wire);
                }
            }
            for (const CpuStageOp &op : spec_.cpuOps) {
                if (op.workPerItem <= 0.0 || !spec_.cpu)
                    continue;
                double t = op.workPerItem * n / op.rate;
                co_await spec_.cpu->run(op.cores, t);
                if (op.kind == CpuStageOp::Kind::Decompress)
                    metrics_.decompressS += t;
                else
                    metrics_.preprocessS += t;
            }
            if (spec_.gpu && spec_.computeSecondsPerItem > 0.0) {
                double t = spec_.computeSecondsPerItem * n;
                co_await spec_.gpu->compute(t);
                metrics_.computeS += t;
            }
            if (spec_.shipLink || spec_.shipBytesPerItem > 0.0) {
                double bytes = spec_.shipBytesPerItem * n;
                metrics_.shipBytes += bytes;
                if (spec_.shipLink) {
                    metrics_.transferS +=
                        spec_.shipLink->serviceTime(bytes);
                    co_await spec_.shipLink->transfer(bytes);
                }
            }
            if (!spec_.runOut.empty())
                co_await spec_.runOut[static_cast<size_t>(r)]->put(n);
            metrics_.itemsDone += static_cast<uint64_t>(n);
            metrics_.lastItemS = sim_.now();
        }
    }
    if (spec_.done)
        spec_.done->done();
}

void
Pipeline::finalize()
{
    if (spec_.cpu)
        metrics_.cpuUtil = spec_.cpu->utilization();
    if (spec_.gpu)
        metrics_.gpuUtil = spec_.gpu->utilization();
    double disk_util = 0.0;
    int n_disks = 0;
    for (auto &p : producers_) {
        if (p.disk) {
            disk_util += p.disk->utilization();
            ++n_disks;
        }
    }
    metrics_.diskUtil = n_disks > 0 ? disk_util / n_disks : 0.0;
}

} // namespace ndp::core
