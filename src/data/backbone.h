/**
 * @file
 * Functional analog of the paper's vision models: a backbone (feature
 * extractor) plus a classifier head.
 *
 * The backbone is a Linear+Tanh feature map over the world's latent
 * space; the head is a Linear classifier. "Full training" updates both
 * (the paper's weeks-long baseline), while "fine-tuning" freezes the
 * backbone and retrains only the head — exactly the weight-freeze /
 * trainable split FT-DMP exploits (§5.1). extractFeatures() is the
 * functional equivalent of a PipeStore's feature-extraction pass, and
 * fineTuneOnFeatures() is the Tuner-side classifier training.
 */

#pragma once

#include <string>

#include "nn/layers.h"
#include "nn/trainer.h"
#include "sim/random.h"

namespace ndp::data {

/** Delegating adapter so a sub-layer can be trained standalone. */
class LayerRef : public nn::Layer
{
  public:
    explicit LayerRef(nn::Layer &l) : inner(l) {}

    nn::Tensor forward(const nn::Tensor &x) override
    {
        return inner.forward(x);
    }

    nn::Tensor backward(const nn::Tensor &g) override
    {
        return inner.backward(g);
    }

    std::vector<nn::Param *> params() override { return inner.params(); }

    std::string name() const override { return inner.name(); }

  private:
    nn::Layer &inner;
};

class VisionModel : public nn::Layer
{
  public:
    /**
     * @param latent_dim world latent dimensionality (backbone input)
     * @param feature_dim backbone output width
     * @param classes classifier width (the world's max class count)
     */
    VisionModel(size_t latent_dim, size_t feature_dim, size_t classes,
                Rng &rng);

    nn::Tensor forward(const nn::Tensor &x) override;
    nn::Tensor backward(const nn::Tensor &grad_out) override;
    std::vector<nn::Param *> params() override;
    std::vector<nn::Param *> allParams() override;
    std::string name() const override { return "VisionModel"; }

    /** Weight-freeze the backbone (fine-tuning mode). */
    void freezeBackbone(bool f) { backboneFc.setFrozen(f); }
    bool backboneFrozen() const { return backboneFc.isFrozen(); }

    /** PipeStore path: run the backbone only. */
    nn::Tensor features(const nn::Tensor &latents);

    /** Feature dataset for @p latents (labels carried through). */
    nn::Dataset extractFeatures(const nn::Dataset &latents);

    /**
     * Tuner path: train only the head on precomputed features.
     * @p feat_test is a feature-space test set for convergence checks.
     */
    nn::TrainResult fineTuneOnFeatures(const nn::Dataset &feat_train,
                                       const nn::Dataset &feat_test,
                                       const nn::TrainConfig &cfg);

    /** Convenience: freeze backbone, extract features, tune the head. */
    nn::TrainResult fineTune(const nn::Dataset &latent_train,
                             const nn::Dataset &latent_test,
                             const nn::TrainConfig &cfg);

    /** Full training: update backbone and head end to end. */
    nn::TrainResult fullTrain(const nn::Dataset &latent_train,
                              const nn::Dataset &latent_test,
                              const nn::TrainConfig &cfg);

    nn::Linear &head() { return headFc; }
    nn::Linear &backbone() { return backboneFc; }
    size_t featureDim() const { return backboneFc.outDim(); }
    size_t numClasses() const { return headFc.outDim(); }

    /** Model version, bumped by the photo service on redeploys. */
    int version = 0;

  private:
    nn::Linear backboneFc;
    nn::Tanh act;
    nn::Linear headFc;
};

} // namespace ndp::data
