/**
 * @file
 * Dataset profiles standing in for CIFAR-100, ImageNet-1K, and
 * ImageNet-21K (Table 2). Each profile fixes a world difficulty and a
 * training recipe tuned so the *Base* accuracy of the functional model
 * lands near the paper's measured band for that dataset; the Outdated /
 * NDPipe / Full orderings then emerge from the drift process itself.
 *
 * The backbone is deliberately compressive (featureDim < latentDim):
 * a day-0 backbone discards latent directions that old classes do not
 * need, which is precisely why full training can beat head-only
 * fine-tuning after drift — the same reason a frozen CNN trunk limits
 * fine-tuning in the paper.
 *
 * Scale note: the paper trains on up to 1.2 M ImageNet images; the
 * functional path here uses pools of ~1e4 latents, and the daily
 * growth rate is scaled up (7 %/day vs the paper's 1.78 %) so that two
 * weeks of uploads provide the same *data-rich* adaptation regime the
 * paper's 17K-new-images-per-day setting gives. Performance-side
 * experiments (Figs. 13-21) use the paper's real image counts in the
 * discrete-event simulator; only accuracy experiments are scaled down.
 */

#pragma once

#include <string>
#include <vector>

#include "data/world.h"
#include "nn/trainer.h"

namespace ndp::data {

struct DatasetProfile
{
    std::string name;
    WorldConfig world;
    nn::TrainConfig fullTrainCfg;
    nn::TrainConfig fineTuneCfg;
    /** Backbone output width (compressive bottleneck). */
    size_t featureDim;
    size_t testSetSize;
    /** Recency bias of the curated retraining set (§3.2). */
    double curatedRecentShare = 0.6;
    int curatedWindowDays = 14;
};

/** Easy profile: ~77 % base top-1 (CIFAR-100 band). */
DatasetProfile cifar100Profile();

/** Medium profile: ~74 % base top-1 (ImageNet-1K band). */
DatasetProfile imagenet1kProfile();

/** Hard profile: ~36 % base top-1 (ImageNet-21K band). */
DatasetProfile imagenet21kProfile();

/** All three, in Table 2 order. */
std::vector<DatasetProfile> allProfiles();

/** Lookup by name; throws std::out_of_range when unknown. */
DatasetProfile profileByName(const std::string &name);

} // namespace ndp::data
