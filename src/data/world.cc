#include "data/world.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <numeric>

namespace ndp::data {

PhotoWorld::PhotoWorld(const WorldConfig &c) : cfg(c), rng(c.seed)
{
    assert(cfg.initialClasses <= cfg.maxClasses);

    std::vector<float> proto(cfg.maxClasses * cfg.latentDim);
    for (auto &v : proto)
        v = static_cast<float>(rng.normal(0.0, cfg.classSep));
    protoAtDay.push_back(std::move(proto));
    activeAtDay.push_back(cfg.initialClasses);

    // Zipf-ish popularity: photo services see heavy-tailed class mixes.
    classWeight.resize(cfg.maxClasses, 0.0);
    for (size_t c2 = 0; c2 < cfg.maxClasses; ++c2)
        classWeight[c2] = 1.0 / std::sqrt(1.0 + static_cast<double>(c2));

    uploadsAtDay.push_back(cfg.initialImages);
    addImages(cfg.initialImages, 0);
}

std::vector<float>
PhotoWorld::samplePoint(int cls, int day)
{
    assert(day >= 0 && static_cast<size_t>(day) < protoAtDay.size());
    const float *p =
        protoAtDay[day].data() + static_cast<size_t>(cls) * cfg.latentDim;
    std::vector<float> x(cfg.latentDim);
    for (size_t i = 0; i < cfg.latentDim; ++i)
        x[i] = p[i] + static_cast<float>(rng.normal(0.0, cfg.noise));
    return x;
}

int
PhotoWorld::pickUploadClass(int day)
{
    size_t active = activeAtDay[day];
    size_t base = cfg.initialClasses;
    // New categories take a fixed share of fresh uploads (§3.2: 5.3 %).
    if (active > base && rng.chance(cfg.newClassShare))
        return static_cast<int>(base + rng.below(active - base));

    double total = 0.0;
    for (size_t c = 0; c < base; ++c)
        total += classWeight[c];
    double r = rng.uniform() * total;
    for (size_t c = 0; c < base; ++c) {
        r -= classWeight[c];
        if (r <= 0.0)
            return static_cast<int>(c);
    }
    return static_cast<int>(base - 1);
}

void
PhotoWorld::addImages(size_t n, int day)
{
    records.reserve(records.size() + n);
    latents.reserve(latents.size() + n * cfg.latentDim);
    for (size_t i = 0; i < n; ++i) {
        int cls = pickUploadClass(day);
        auto x = samplePoint(cls, day);
        size_t row = records.size();
        records.push_back(ImageRecord{nextId++, cls, day, row});
        latents.insert(latents.end(), x.begin(), x.end());
    }
}

void
PhotoWorld::driftOneDay()
{
    double step = cfg.driftPerDay * cfg.classSep /
                  std::sqrt(static_cast<double>(cfg.latentDim));
    std::vector<float> proto = protoAtDay.back();
    for (auto &v : proto)
        v += static_cast<float>(rng.normal(0.0, step));
    protoAtDay.push_back(std::move(proto));
}

void
PhotoWorld::advanceDays(int days)
{
    for (int d = 0; d < days; ++d) {
        ++curDay;
        driftOneDay();
        size_t active = activeAtDay.back();
        // Introduce a new category roughly every other day until the
        // world is saturated.
        if (active < cfg.maxClasses && curDay % 2 == 0)
            ++active;
        activeAtDay.push_back(active);

        size_t n_new = static_cast<size_t>(std::llround(
            cfg.dailyGrowth * static_cast<double>(records.size())));
        uploadsAtDay.push_back(n_new);
        addImages(n_new, curDay);
    }
}

nn::Dataset
PhotoWorld::poolDataset(size_t max_n)
{
    nn::Dataset ds;
    size_t n = records.size();
    if (max_n == 0 || max_n >= n) {
        ds.x = nn::Tensor(n, cfg.latentDim);
        std::memcpy(ds.x.data().data(), latents.data(),
                    latents.size() * sizeof(float));
        ds.y.reserve(n);
        for (const auto &r : records)
            ds.y.push_back(r.label);
        return ds;
    }
    ds.x = nn::Tensor(max_n, cfg.latentDim);
    ds.y.reserve(max_n);
    for (size_t i = 0; i < max_n; ++i) {
        size_t j = rng.below(n);
        std::memcpy(ds.x.rowPtr(i),
                    latents.data() + records[j].row * cfg.latentDim,
                    cfg.latentDim * sizeof(float));
        ds.y.push_back(records[j].label);
    }
    return ds;
}

nn::Dataset
PhotoWorld::recentDataset(size_t n) const
{
    n = std::min(n, records.size());
    nn::Dataset ds;
    ds.x = nn::Tensor(n, cfg.latentDim);
    ds.y.reserve(n);
    size_t start = records.size() - n;
    for (size_t i = 0; i < n; ++i) {
        const auto &r = records[start + i];
        std::memcpy(ds.x.rowPtr(i),
                    latents.data() + r.row * cfg.latentDim,
                    cfg.latentDim * sizeof(float));
        ds.y.push_back(r.label);
    }
    return ds;
}

size_t
PhotoWorld::firstIndexOfDay(int day) const
{
    size_t lo = 0, hi = records.size();
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (records[mid].dayAdded < day)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

nn::Dataset
PhotoWorld::recencyBiasedDataset(size_t n, double recent_share,
                                 int window_days)
{
    size_t first_recent =
        firstIndexOfDay(std::max(0, curDay - window_days + 1));
    size_t n_recent = records.size() - first_recent;

    nn::Dataset ds;
    ds.x = nn::Tensor(n, cfg.latentDim);
    ds.y.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        size_t j;
        if (n_recent > 0 && rng.chance(recent_share))
            j = first_recent + rng.below(n_recent);
        else
            j = rng.below(records.size());
        std::memcpy(ds.x.rowPtr(i),
                    latents.data() + records[j].row * cfg.latentDim,
                    cfg.latentDim * sizeof(float));
        ds.y.push_back(records[j].label);
    }
    return ds;
}

nn::Dataset
PhotoWorld::sampleTestSet(size_t n)
{
    // Weight each day in the window by its upload volume.
    int first_day = std::max(0, curDay - cfg.testWindowDays + 1);
    double total_w = 0.0;
    for (int d = first_day; d <= curDay; ++d)
        total_w += static_cast<double>(uploadsAtDay[d]);

    nn::Dataset ds;
    ds.x = nn::Tensor(n, cfg.latentDim);
    ds.y.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        double r = rng.uniform() * total_w;
        int day = curDay;
        for (int d = first_day; d <= curDay; ++d) {
            r -= static_cast<double>(uploadsAtDay[d]);
            if (r <= 0.0) {
                day = d;
                break;
            }
        }
        int cls = pickUploadClass(day);
        auto x = samplePoint(cls, day);
        std::memcpy(ds.x.rowPtr(i), x.data(),
                    cfg.latentDim * sizeof(float));
        ds.y.push_back(cls);
    }
    return ds;
}

const float *
PhotoWorld::latentOf(const ImageRecord &rec) const
{
    return latents.data() + rec.row * cfg.latentDim;
}

} // namespace ndp::data
