#include "data/backbone.h"

namespace ndp::data {

VisionModel::VisionModel(size_t latent_dim, size_t feature_dim,
                         size_t classes, Rng &rng)
    : backboneFc(latent_dim, feature_dim, rng),
      headFc(feature_dim, classes, rng)
{}

nn::Tensor
VisionModel::forward(const nn::Tensor &x)
{
    return headFc.forward(act.forward(backboneFc.forward(x)));
}

nn::Tensor
VisionModel::backward(const nn::Tensor &grad_out)
{
    return backboneFc.backward(act.backward(headFc.backward(grad_out)));
}

std::vector<nn::Param *>
VisionModel::params()
{
    std::vector<nn::Param *> ps = backboneFc.params();
    auto hs = headFc.params();
    ps.insert(ps.end(), hs.begin(), hs.end());
    return ps;
}

std::vector<nn::Param *>
VisionModel::allParams()
{
    std::vector<nn::Param *> ps = backboneFc.allParams();
    auto hs = headFc.allParams();
    ps.insert(ps.end(), hs.begin(), hs.end());
    return ps;
}

nn::Tensor
VisionModel::features(const nn::Tensor &latents)
{
    return act.forward(backboneFc.forward(latents));
}

nn::Dataset
VisionModel::extractFeatures(const nn::Dataset &latents)
{
    nn::Dataset out;
    out.x = features(latents.x);
    out.y = latents.y;
    return out;
}

nn::TrainResult
VisionModel::fineTuneOnFeatures(const nn::Dataset &feat_train,
                                const nn::Dataset &feat_test,
                                const nn::TrainConfig &cfg)
{
    LayerRef head_only(headFc);
    return nn::trainClassifier(head_only, feat_train, feat_test, cfg);
}

nn::TrainResult
VisionModel::fineTune(const nn::Dataset &latent_train,
                      const nn::Dataset &latent_test,
                      const nn::TrainConfig &cfg)
{
    bool was_frozen = backboneFrozen();
    freezeBackbone(true);
    nn::Dataset ft = extractFeatures(latent_train);
    nn::Dataset fe = extractFeatures(latent_test);
    auto result = fineTuneOnFeatures(ft, fe, cfg);
    freezeBackbone(was_frozen);
    return result;
}

nn::TrainResult
VisionModel::fullTrain(const nn::Dataset &latent_train,
                       const nn::Dataset &latent_test,
                       const nn::TrainConfig &cfg)
{
    freezeBackbone(false);
    return nn::trainClassifier(*this, latent_train, latent_test, cfg);
}

} // namespace ndp::data
