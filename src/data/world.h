/**
 * @file
 * Synthetic drifting photo world.
 *
 * Stands in for the paper's ImageNet/CIFAR drift scenario (§3.2): a
 * photo pool grows 1.78 % per day, 5.3 % of new photos belong to new
 * categories, and the relationship between photo content and labels
 * shifts slowly (concept drift). Photos are latent vectors drawn from
 * per-class Gaussian prototypes; prototypes random-walk each day, and
 * new classes are introduced over time. Each stored photo keeps the
 * distribution of its upload day (real photos do not change after
 * upload — the *stream* drifts), and test sets are drawn from the
 * recent-uploads mixture, which is what "new test datasets that
 * reflect changes in the stored images" measures. A frozen backbone
 * (see backbone.h) turns latents into the features NDPipe's PipeStores
 * extract.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "nn/dataset.h"
#include "sim/random.h"

namespace ndp::data {

struct WorldConfig
{
    /** Dimensionality of the latent "photo content" space. */
    size_t latentDim = 16;
    /** Classes present at day 0. */
    size_t initialClasses = 80;
    /** Total classes the world can grow into. */
    size_t maxClasses = 100;
    /** Photos in the pool at day 0. */
    size_t initialImages = 10000;
    /** Distance scale between class prototypes. */
    double classSep = 3.0;
    /** Intra-class spread (higher = harder problem). */
    double noise = 3.1;
    /** Per-day prototype random-walk step, relative to classSep. */
    double driftPerDay = 0.3;
    /** Daily pool growth rate (paper: 1.78 %). */
    double dailyGrowth = 0.0178;
    /** Share of new photos that belong to new categories (5.3 %). */
    double newClassShare = 0.053;
    /** Days of uploads a "current" test set spans. */
    int testWindowDays = 5;
    uint64_t seed = 42;
};

/** One stored photo's ground truth. */
struct ImageRecord
{
    uint64_t id;
    int label;
    int dayAdded;
    /** Index into the latent matrix. */
    size_t row;
};

class PhotoWorld
{
  public:
    explicit PhotoWorld(const WorldConfig &cfg);

    /** Advance the world: drift, growth, new categories. */
    void advanceDays(int days);

    int day() const { return curDay; }
    size_t numImages() const { return records.size(); }
    /** Classes introduced so far. */
    size_t numClasses() const { return activeAtDay.back(); }
    size_t maxClasses() const { return cfg.maxClasses; }
    size_t latentDim() const { return cfg.latentDim; }
    const WorldConfig &config() const { return cfg; }

    const std::vector<ImageRecord> &pool() const { return records; }

    /**
     * Latent dataset of the stored pool: the training data a storage
     * system can actually read. @p max_n == 0 means the whole pool;
     * otherwise a uniform random subset of that size.
     */
    nn::Dataset poolDataset(size_t max_n = 0);

    /** Latents of the @p n most recently added photos. */
    nn::Dataset recentDataset(size_t n) const;

    /**
     * Training set biased toward fresh photos, the way production
     * retraining curates "the latest images" (§3.2): each of the @p n
     * rows is drawn from photos added in the last @p window_days with
     * probability @p recent_share, else uniformly from the whole pool.
     */
    nn::Dataset recencyBiasedDataset(size_t n, double recent_share,
                                     int window_days);

    /**
     * Fresh test set drawn from the recent-uploads mixture: each
     * sample picks an upload day within the last testWindowDays
     * (weighted by that day's upload volume) and draws from the class
     * prototypes *as they stood on that day*.
     */
    nn::Dataset sampleTestSet(size_t n);

    /** Latent row for a specific stored photo. */
    const float *latentOf(const ImageRecord &rec) const;

    /** First pool index whose photo was added on/after @p day. */
    size_t firstIndexOfDay(int day) const;

  private:
    void addImages(size_t n, int day);
    void driftOneDay();
    /** Draw a latent from class @p cls at @p day's prototype. */
    std::vector<float> samplePoint(int cls, int day);
    /** Pick a class for a fresh photo uploaded on @p day. */
    int pickUploadClass(int day);

    WorldConfig cfg;
    Rng rng;
    int curDay = 0;

    /** Per-day snapshots: [day][class * latentDim]. */
    std::vector<std::vector<float>> protoAtDay;
    /** Per-day count of introduced classes. */
    std::vector<size_t> activeAtDay;
    /** Photos uploaded on each day (for test-mixture weights). */
    std::vector<size_t> uploadsAtDay;
    /** Popularity weight per class. */
    std::vector<double> classWeight;

    std::vector<ImageRecord> records;
    /** All latents, one row per record. */
    std::vector<float> latents;
    uint64_t nextId = 1;
};

} // namespace ndp::data
