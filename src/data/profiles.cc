#include "data/profiles.h"

#include <stdexcept>

namespace ndp::data {

namespace {

nn::TrainConfig
baseTrainCfg()
{
    nn::TrainConfig cfg;
    cfg.batchSize = 128;
    cfg.maxEpochs = 60;
    cfg.sgd.lr = 0.05;
    cfg.sgd.momentum = 0.9;
    cfg.sgd.weightDecay = 1e-4;
    cfg.convergeDeltaPct = 0.01;
    cfg.convergePatience = 4;
    return cfg;
}

WorldConfig
baseWorld()
{
    WorldConfig w;
    w.latentDim = 24;
    w.initialClasses = 80;
    w.maxClasses = 100;
    w.initialImages = 10000;
    w.classSep = 3.0;
    w.driftPerDay = 0.15;
    w.dailyGrowth = 0.07;
    w.newClassShare = 0.053;
    w.testWindowDays = 5;
    return w;
}

} // namespace

DatasetProfile
cifar100Profile()
{
    DatasetProfile p;
    p.name = "CIFAR100";
    p.world = baseWorld();
    p.world.noise = 2.35;
    p.world.seed = 101;
    p.featureDim = 12;
    p.testSetSize = 3000;
    p.fullTrainCfg = baseTrainCfg();
    p.fineTuneCfg = baseTrainCfg();
    p.fineTuneCfg.maxEpochs = 25;
    p.fineTuneCfg.convergePatience = 3;
    return p;
}

DatasetProfile
imagenet1kProfile()
{
    DatasetProfile p;
    p.name = "ImageNet1K";
    p.world = baseWorld();
    p.world.noise = 2.4;
    p.world.seed = 102;
    p.featureDim = 12;
    p.testSetSize = 3000;
    p.fullTrainCfg = baseTrainCfg();
    p.fineTuneCfg = baseTrainCfg();
    p.fineTuneCfg.maxEpochs = 25;
    p.fineTuneCfg.convergePatience = 3;
    return p;
}

DatasetProfile
imagenet21kProfile()
{
    DatasetProfile p;
    p.name = "ImageNet21K";
    p.world = baseWorld();
    p.world.initialClasses = 160;
    p.world.maxClasses = 200;
    p.world.initialImages = 14000;
    p.world.noise = 3.6;
    p.world.seed = 103;
    p.featureDim = 12;
    p.testSetSize = 3000;
    p.fullTrainCfg = baseTrainCfg();
    p.fineTuneCfg = baseTrainCfg();
    p.fineTuneCfg.maxEpochs = 25;
    p.fineTuneCfg.convergePatience = 3;
    return p;
}

std::vector<DatasetProfile>
allProfiles()
{
    return {cifar100Profile(), imagenet1kProfile(), imagenet21kProfile()};
}

DatasetProfile
profileByName(const std::string &name)
{
    for (auto &p : allProfiles()) {
        if (p.name == name)
            return p;
    }
    throw std::out_of_range("unknown dataset profile: " + name);
}

} // namespace ndp::data
