/**
 * @file
 * Closed-form network-time estimates that are *provably* equal to the
 * fabric's fluid-flow outcome, for planners (APO) and back-of-envelope
 * figure benches that must not spin up a Simulator.
 *
 * These are the only sanctioned homes for `bytes / Gbps` arithmetic
 * outside the fabric itself; everything else ships real bytes through
 * NetFabric::transfer (enforced by the `analytic-net-math` lint rule).
 */

#pragma once

namespace ndp::net {

/** Seconds to serialize @p bytes over an uncontended @p gbps link. */
inline double
wireSeconds(double bytes, double gbps)
{
    return bytes * 8.0 / (gbps * 1e9);
}

/**
 * Aggregate drain time of @p total_bytes offered by any number of
 * senders to one shared @p gbps ingress link.
 *
 * Work conservation makes this exact under max-min fairness *when the
 * shared ingress is the path bottleneck* — the hub topology's only
 * possible shape, and the one every APO fleet uses: while any flow is
 * active the shared link runs at full rate, so the time to drain the
 * batch is total work over capacity regardless of how the
 * instantaneous shares split between senders. On a multi-link
 * Topology (net/topology.h) an oversubscribed trunk or WAN hop can
 * bottleneck upstream of the ingress and this closed form becomes a
 * lower bound — planners over such fabrics must simulate (or bound
 * with the path minimum via NetFabric::serviceTime). This is the
 * "N stores share the Tuner's ingress" term APO charges per run —
 * cross-validated against fabric simulation in test_net.cc.
 */
inline double
sharedIngressSeconds(double total_bytes, double gbps)
{
    return wireSeconds(total_bytes, gbps);
}

} // namespace ndp::net
