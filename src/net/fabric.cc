#include "net/fabric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ndp::net {

namespace {

/** Residual bits below which a flow counts as drained. Absolute, not
 *  relative: payloads are whole bytes, so 1e-3 bits is pure float
 *  slack and never truncates real work. */
constexpr double kEpsBits = 1e-3;

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

const char *
flowClassName(FlowClass c)
{
    switch (c) {
      case FlowClass::BulkInput:
        return "bulk-input";
      case FlowClass::FeatureShip:
        return "feature-ship";
      case FlowClass::DeltaPush:
        return "delta-push";
      case FlowClass::Upload:
        return "upload";
      case FlowClass::ResultShip:
        return "result-ship";
      case FlowClass::Sync:
        return "sync";
      case FlowClass::GeoDelta:
        return "geo-delta";
    }
    return "?";
}

NetFabric::NetFabric(sim::Simulator &s, const Topology &topo)
    : sim_(s), topo_(topo), routes_(topo_),
      nTrunks_(static_cast<int>(topo_.nTrunks()))
{
    assert(topo_.validate().empty() && "invalid topology");
    links_.reserve(topo_.nTrunks());
    for (const Trunk &t : topo_.trunks())
        links_.push_back({t.gbps * 1e9, t.latencyS, 0.0, 0.0, t.wan});
}

NodeId
NetFabric::addNode(const hw::NicSpec &nic)
{
    // Hub fabrics have no racks; topology fabrics default to rack 0.
    return addNode(nic, topo_.isHub() ? kNoRack : 0);
}

NodeId
NetFabric::addNode(const hw::NicSpec &nic, RackId rack)
{
    assert(nic.gbps > 0.0 && "node NIC needs positive bandwidth");
    assert((topo_.isHub() ? rack == kNoRack
                          : rack >= 0 && rack < topo_.nRacks()) &&
           "node rack must exist in the fabric's topology");
    const NodeId id = nodeCount();
    // Duplex: the uplink and downlink are independent directed links,
    // so (e.g.) delta pushes out of the Tuner never steal capacity
    // from feature shipping into it.
    links_.push_back({nic.gbps * 1e9, nic.latencyS, 0.0, 0.0, false});
    links_.push_back({nic.gbps * 1e9, nic.latencyS, 0.0, 0.0, false});
    nodeRacks_.push_back(rack);
    return id;
}

RackId
NetFabric::rackOf(NodeId n) const
{
    return nodeRacks_[static_cast<size_t>(n)];
}

void
NetFabric::setTracer(obs::Tracer *t)
{
    trace_ = t;
    if (!t)
        return;
    for (int c = 0; c < kFlowClasses; ++c)
        trkFlow_[c] =
            t->track("net", flowClassName(static_cast<FlowClass>(c)));
}

void
NetFabric::attachFaults(sim::FaultInjector *inj)
{
    inj_ = inj;
    windows_.clear();
    if (!inj)
        return;
    const int n_nodes = nodeCount();
    for (const sim::FaultInjector::LinkFault &lf : inj->linkFaults()) {
        const bool down = lf.kind == sim::FaultKind::LinkDown;
        if (lf.wan) {
            // WAN fault: every WAN trunk touching the named site (or
            // all of them for kAnySite). Both directions of a site
            // pair go dark/slow together — a severed or congested
            // long-haul path, not one fiber of it. The first matching
            // trunk is the report's designated copy.
            bool first = true;
            for (int t = 0; t < nTrunks_; ++t) {
                const Trunk &tr =
                    topo_.trunk(static_cast<size_t>(t));
                if (!tr.wan)
                    continue;
                if (lf.node >= 0 && tr.siteA != lf.node &&
                    tr.siteB != lf.node)
                    continue;
                windows_.push_back({t, lf.fromS, lf.untilS, lf.factor,
                                    down, first, false});
                first = false;
            }
            continue;
        }
        std::vector<NodeId> targets;
        if (lf.node == sim::FaultSpec::kIngressLink) {
            if (ingress_ != kNoNode)
                targets.push_back(ingress_);
        } else if (lf.node == sim::FaultSpec::kAnyStore) {
            for (NodeId n = 0; n < n_nodes; ++n)
                if (n != ingress_)
                    targets.push_back(n);
        } else if (lf.node >= 0 && lf.node < n_nodes) {
            targets.push_back(lf.node);
        }
        for (NodeId n : targets) {
            // A node-level fault hits both directions of its NIC; the
            // uplink copy is the report's designated one.
            windows_.push_back({upOf(n), lf.fromS, lf.untilS,
                                lf.factor, down, true, false});
            windows_.push_back({downOf(n), lf.fromS, lf.untilS,
                                lf.factor, down, false, false});
        }
    }
}

double
NetFabric::effectiveCap(int link) const
{
    const double now = sim_.now();
    double cap = links_[static_cast<size_t>(link)].capBps;
    for (const FaultWindow &w : windows_) {
        if (w.link != link || now < w.fromS || now >= w.untilS)
            continue;
        if (w.down)
            return 0.0;
        cap *= w.factor;
    }
    return cap;
}

double
NetFabric::nextFaultBoundary() const
{
    const double now = sim_.now();
    double next = kInf;
    for (const FaultWindow &w : windows_) {
        if (w.fromS > now)
            next = std::min(next, w.fromS);
        if (w.untilS > now)
            next = std::min(next, w.untilS);
    }
    return next;
}

void
NetFabric::countWindows()
{
    if (!inj_ || windows_.empty())
        return;
    const double now = sim_.now();
    for (FaultWindow &w : windows_) {
        if (w.counted || now < w.fromS)
            continue;
        w.counted = true;
        // One declared fault may expand to many directed windows;
        // only the designated primary copy reaches the report.
        if (!w.primary)
            continue;
        if (w.down)
            ++inj_->report().linkDowns;
        else
            ++inj_->report().linkDegrades;
    }
}

int
NetFabric::pathOf(NodeId src, NodeId dst, int *path) const
{
    int n = 0;
    path[n++] = upOf(src);
    if (!topo_.isHub()) {
        const RackId rs = nodeRacks_[static_cast<size_t>(src)];
        const RackId rd = nodeRacks_[static_cast<size_t>(dst)];
        if (rs != rd) {
            assert(routes_.reachable(rs, rd) &&
                   "no trunk route between the endpoint racks");
            const std::vector<int> &trunks =
                routes_.trunkPath(rs, rd);
            assert(n + static_cast<int>(trunks.size()) + 1 <=
                   kMaxPathLinks);
            for (int t : trunks)
                path[n++] = t;
        }
    }
    path[n++] = downOf(dst);
    return n;
}

double
NetFabric::serviceTime(NodeId src, NodeId dst, double bytes) const
{
    assert(src >= 0 && dst >= 0 && src < nodeCount() &&
           dst < nodeCount());
    int path[kMaxPathLinks];
    const int n = pathOf(src, dst, path);
    double cap = kInf;
    for (int i = 0; i < n; ++i)
        cap = std::min(cap,
                       links_[static_cast<size_t>(path[i])].capBps);
    return bytes * 8.0 / cap;
}

double
NetFabric::pathLatency(NodeId src, NodeId dst) const
{
    int path[kMaxPathLinks];
    const int n = pathOf(src, dst, path);
    double lat = 0.0;
    for (int i = 0; i < n; ++i)
        lat += links_[static_cast<size_t>(path[i])].latencyS;
    return lat;
}

double
NetFabric::bytesInto(NodeId n) const
{
    return links_[static_cast<size_t>(downOf(n))].bytesMoved;
}

double
NetFabric::bytesOutOf(NodeId n) const
{
    return links_[static_cast<size_t>(upOf(n))].bytesMoved;
}

double
NetFabric::downlinkUtilization(NodeId n) const
{
    const double now = sim_.now();
    if (now <= 0.0)
        return 0.0;
    return links_[static_cast<size_t>(downOf(n))].busyS / now;
}

double
NetFabric::trunkBytes(size_t trunk) const
{
    assert(trunk < static_cast<size_t>(nTrunks_));
    return links_[trunk].bytesMoved;
}

double
NetFabric::trunkUtilization(size_t trunk) const
{
    assert(trunk < static_cast<size_t>(nTrunks_));
    const double now = sim_.now();
    if (now <= 0.0)
        return 0.0;
    return links_[trunk].busyS / now;
}

NetReport
NetFabric::report() const
{
    NetReport r;
    r.bytesMoved = totalBytes_;
    r.flowsCompleted = flowsCompleted_;
    r.peakConcurrentFlows = peakConcurrent_;
    if (ingress_ != kNoNode) {
        r.ingressBytes = bytesInto(ingress_);
        r.ingressUtil = downlinkUtilization(ingress_);
    }
    r.wanBytes = wanBytes_;
    return r;
}

void
NetFabric::startFlow(TransferAwaiter *aw)
{
    assert(aw->src >= 0 && aw->dst >= 0 && "transfer endpoints unset");
    assert(aw->src < nodeCount() && aw->dst < nodeCount());
    assert(aw->bytes >= 0.0);
    const double now = sim_.now();
    countWindows();
    const double latency = pathLatency(aw->src, aw->dst);
    if (aw->bytes <= 0.0) {
        // Empty payload: a message still crosses the wire and pays
        // propagation latency, but never enters the sharing engine.
        aw->stats = {now, now, 0.0, 0.0, 0};
        ++flowsCompleted_;
        sim_.scheduleHandle(latency, aw->handle);
        return;
    }
    advance();
    Flow f;
    f.aw = aw;
    f.nPath = pathOf(aw->src, aw->dst, f.path);
    for (int i = 0; i < f.nPath; ++i)
        if (links_[static_cast<size_t>(f.path[i])].wan)
            f.wan = true;
    f.remBits = aw->bytes * 8.0;
    aw->stats.startS = now;
    aw->stats.bytes = aw->bytes;
    if (trace_) {
        f.traceTrk = trkFlow_[static_cast<int>(aw->cls)];
        f.traceId = trace_->asyncBegin(
            f.traceTrk, obs::Cat::Flow, flowClassName(aw->cls), now,
            {{"src", static_cast<double>(aw->src)},
             {"dst", static_cast<double>(aw->dst)},
             {"mb", aw->bytes / 1e6}});
    }
    flows_.push_back(f);
    peakConcurrent_ = std::max<uint64_t>(peakConcurrent_,
                                         flows_.size());
    recompute();
    scheduleNext();
}

void
NetFabric::advance()
{
    const double now = sim_.now();
    const double dt = now - lastAdvanceS_;
    lastAdvanceS_ = now;
    if (dt <= 0.0 || flows_.empty())
        return;
    // Per-link allocated rate, for the busy-time integral. Link byte
    // counters are charged at flow completion instead of per-advance:
    // the increments would accumulate float residue and reported
    // bytes must equal the payload bytes exactly.
    remCap_.assign(links_.size(), 0.0);
    for (Flow &f : flows_) {
        f.remBits -= f.rateBps * dt;
        for (int i = 0; i < f.nPath; ++i)
            remCap_[static_cast<size_t>(f.path[i])] += f.rateBps;
    }
    for (size_t l = 0; l < links_.size(); ++l) {
        if (remCap_[l] <= 0.0)
            continue;
        links_[l].busyS += dt * (remCap_[l] / links_[l].capBps);
    }
}

void
NetFabric::recompute()
{
    if (flows_.empty())
        return;
    remCap_.assign(links_.size(), 0.0);
    nUnfixed_.assign(links_.size(), 0);
    for (size_t l = 0; l < links_.size(); ++l)
        remCap_[l] = effectiveCap(static_cast<int>(l));
    for (Flow &f : flows_) {
        f.rateBps = 0.0;
        for (int i = 0; i < f.nPath; ++i)
            ++nUnfixed_[static_cast<size_t>(f.path[i])];
    }
    // Contention stat: flows sharing any of my links right now
    // (counts are complete only after the pass above).
    for (Flow &f : flows_) {
        int shared = 0;
        for (int i = 0; i < f.nPath; ++i)
            shared = std::max(
                shared, nUnfixed_[static_cast<size_t>(f.path[i])]);
        f.peakShared = std::max(f.peakShared, shared - 1);
    }

    // Progressive filling over bottleneck sets. Each round saturates
    // the link with the smallest fair share (ties broken by lowest
    // link index, keeping the solve deterministic); its flows are
    // fixed at that share and their demand leaves every other link on
    // their paths.
    std::vector<char> fixed(flows_.size(), 0);
    size_t n_left = flows_.size();
    while (n_left > 0) {
        int bottleneck = -1;
        double best = kInf;
        for (size_t l = 0; l < links_.size(); ++l) {
            if (nUnfixed_[l] == 0)
                continue;
            // max() guards float residue from earlier subtractions.
            const double share =
                std::max(remCap_[l], 0.0) / nUnfixed_[l];
            if (share < best) {
                best = share;
                bottleneck = static_cast<int>(l);
            }
        }
        assert(bottleneck >= 0 && "unfixed flow crosses no link");
        const double share = best;
        for (size_t i = 0; i < flows_.size(); ++i) {
            if (fixed[i])
                continue;
            Flow &f = flows_[i];
            bool crosses = false;
            for (int k = 0; k < f.nPath; ++k)
                if (f.path[k] == bottleneck) {
                    crosses = true;
                    break;
                }
            if (!crosses)
                continue;
            f.rateBps = share;
            fixed[i] = 1;
            --n_left;
            for (int k = 0; k < f.nPath; ++k) {
                remCap_[static_cast<size_t>(f.path[k])] -= share;
                --nUnfixed_[static_cast<size_t>(f.path[k])];
            }
        }
        // Guard against float residue leaving a link "negative".
        remCap_[static_cast<size_t>(bottleneck)] =
            std::max(remCap_[static_cast<size_t>(bottleneck)], 0.0);
    }
    if (trace_) {
        const double now = sim_.now();
        for (Flow &f : flows_) {
            if (f.rateBps == f.tracedRateBps)
                continue;
            trace_->asyncInstant(f.traceId, f.traceTrk,
                                 obs::Cat::Flow, "rate", now,
                                 {{"gbps", f.rateBps / 1e9}});
            f.tracedRateBps = f.rateBps;
        }
    }
}

void
NetFabric::scheduleNext()
{
    if (flows_.empty())
        return;
    double dt = kInf;
    for (const Flow &f : flows_) {
        if (f.rateBps <= 0.0)
            continue; // stalled by a LinkDown window
        dt = std::min(dt, std::max(f.remBits, 0.0) / f.rateBps);
    }
    // Fault boundaries only matter while flows are in flight; idle
    // windows schedule nothing, so an armed-but-idle fabric never
    // extends the simulation's end time.
    const double boundary = nextFaultBoundary();
    if (boundary < kInf)
        dt = std::min(dt, boundary - sim_.now());
    if (dt == kInf)
        return; // every flow stalled and no boundary ahead: wedged
                // until the plan says otherwise (LinkDown forever).
    dt = std::max(dt, 0.0);
    // The tick must move the clock: once a flow's residual drops under
    // rate * ulp(now) while still above kEpsBits, its drain dt rounds
    // to the same timestamp and advance() sees dt == 0 — an infinite
    // same-time spin. Clamping to one ulp shifts a finish by at most
    // ~4e-13 s and is bitwise deterministic.
    const double now = sim_.now();
    const double tick = std::nextafter(now, kInf) - now;
    dt = std::max(dt, tick);
    const uint64_t e = ++epoch_;
    sim_.schedule(dt, [this, e] {
        if (e != epoch_)
            return; // superseded by a later arrival/departure
        onTick();
    });
}

void
NetFabric::onTick()
{
    advance();
    countWindows();
    // Complete drained flows in arrival order.
    for (size_t i = 0; i < flows_.size();) {
        if (flows_[i].remBits <= kEpsBits)
            finishFlow(i);
        else
            ++i;
    }
    recompute();
    scheduleNext();
}

void
NetFabric::finishFlow(size_t idx)
{
    Flow f = flows_[idx];
    flows_.erase(flows_.begin() +
                 static_cast<std::ptrdiff_t>(idx));
    TransferAwaiter *aw = f.aw;
    const double now = sim_.now();
    aw->stats.finishS = now;
    const double dur = now - aw->stats.startS;
    aw->stats.achievedGbps =
        dur > 0.0 ? aw->stats.bytes * 8.0 / (dur * 1e9) : 0.0;
    aw->stats.peakSharedWith = f.peakShared;
    if (trace_)
        trace_->asyncEnd(
            f.traceId, f.traceTrk, obs::Cat::Flow,
            flowClassName(aw->cls), now,
            {{"gbps", aw->stats.achievedGbps},
             {"shared", static_cast<double>(f.peakShared)}});
    for (int i = 0; i < f.nPath; ++i)
        links_[static_cast<size_t>(f.path[i])].bytesMoved +=
            aw->stats.bytes;
    totalBytes_ += aw->stats.bytes;
    if (f.wan)
        wanBytes_ += aw->stats.bytes;
    ++flowsCompleted_;
    sim_.scheduleHandle(pathLatency(aw->src, aw->dst), aw->handle);
}

} // namespace ndp::net
