/**
 * @file
 * Deterministic, event-driven datacenter network fabric (§4.1, §6.4).
 *
 * Every inter-node transfer in the simulated cluster — feature
 * shipping, delta pushes, SRV input staging, online uploads, media
 * results, recovery re-dispatch — crosses one NetFabric instead of a
 * per-dataflow ad-hoc `bytes / Gbps` division. The fabric owns a
 * declarative hub topology: each node's NIC (from hw/specs.h)
 * contributes a duplex pair of directed links to an implicit
 * top-of-rack switch — an uplink (node -> ToR) and a downlink
 * (ToR -> node) — and a flow from src to dst crosses exactly
 * [uplink(src), downlink(dst)]. N PipeStores shipping to one Tuner
 * therefore share the Tuner's ingress downlink *structurally*: the
 * paper's bandwidth knee (Fig. 18) and the N-stores-share-one-link
 * APO term are emergent, not precomputed.
 *
 * Bandwidth allocation is flow-level max-min fairness via progressive
 * filling: on every flow arrival, departure, and link-fault window
 * boundary the fabric (1) advances all active flows by their current
 * rates, (2) re-solves the allocation — repeatedly fix the flows of
 * the link with the smallest fair share remCap/nUnfixed, in
 * deterministic link-index order — and (3) schedules the earliest
 * completion, guarded by an epoch counter so superseded events no-op.
 * A transfer completes after serialization and then charges the path
 * propagation latency before the awaiting coroutine resumes, matching
 * the retired half-duplex hw::Link contract.
 *
 * Determinism rule: the fabric performs no RNG draws and no wall-clock
 * reads; flows are stored and iterated in arrival order and links in
 * index order, so a run is a pure function of the transfer sequence.
 * Same seed + same FaultPlan => bit-identical NetReport.
 *
 * Fault interaction: when a FaultInjector carrying LinkDegrade /
 * LinkDown windows is attached, the affected links' capacities scale
 * (or drop to zero — flows stall in place, stall semantics) inside
 * each window; the fabric schedules recompute events at window
 * boundaries only while flows are active, so an empty plan leaves the
 * event sequence bitwise identical to an unarmed run.
 */

#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "hw/specs.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace ndp::net {

/** Index of a node (NIC) attached to the fabric. */
using NodeId = int;

/** Sentinel: no node / transfer leg not configured. */
inline constexpr NodeId kNoNode = -1;

/** Why bytes are crossing the fabric (per-flow accounting). */
enum class FlowClass
{
    /** SRV input staging: storage server -> host. */
    BulkInput,
    /** FT-DMP feature tensors: store -> Tuner. */
    FeatureShip,
    /** Check-N-Run model deltas: Tuner -> store. */
    DeltaPush,
    /** Online photo uploads: client -> inference server. */
    Upload,
    /** Inference labels / media results leaving a store. */
    ResultShip,
    /** Naive-NDP ("+FC") weight synchronization. */
    Sync,
};

const char *flowClassName(FlowClass c);

/** What one completed transfer experienced. */
struct FlowStats
{
    double startS = 0.0;
    /** Serialization end; the awaiter resumes latency later. */
    double finishS = 0.0;
    double bytes = 0.0;
    /** bytes * 8 / (finishS - startS), i.e. contention included. */
    double achievedGbps = 0.0;
    /** Peak number of *other* flows sharing any of this flow's links. */
    int peakSharedWith = 0;
};

/** Per-run fabric roll-up, reported alongside StageMetrics. */
struct NetReport
{
    /** Payload bytes of completed flows (fabric-wide). */
    double bytesMoved = 0.0;
    uint64_t flowsCompleted = 0;
    /** High-water mark of simultaneously active flows. */
    uint64_t peakConcurrentFlows = 0;
    /** Bytes into the designated ingress node (Tuner/host downlink). */
    double ingressBytes = 0.0;
    /** Busy fraction of the ingress downlink over the whole run. */
    double ingressUtil = 0.0;
};

class NetFabric
{
  public:
    explicit NetFabric(sim::Simulator &s) : sim_(s) {}

    NetFabric(const NetFabric &) = delete;
    NetFabric &operator=(const NetFabric &) = delete;

    /**
     * Attach a node with @p nic: creates its duplex uplink/downlink
     * pair to the implicit ToR. Node ids are dense and assigned in
     * call order (dataflows add stores first, so fault store index i
     * is fabric node i).
     */
    NodeId addNode(const hw::NicSpec &nic);

    /** Designate the node whose downlink NetReport's ingress fields
     *  track (the Tuner / SRV host / inference server). */
    void setIngress(NodeId n) { ingress_ = n; }
    NodeId ingress() const { return ingress_; }

    /**
     * Adopt @p inj's LinkDegrade/LinkDown windows. Fault node mapping:
     * store index i targets fabric node i, FaultSpec::kIngressLink
     * targets the designated ingress node, kAnyStore every non-ingress
     * node. A null injector (or one without link faults) changes
     * nothing — the zero-cost rule of sim/fault.h.
     */
    void attachFaults(sim::FaultInjector *inj);

    /**
     * Record every flow on @p t as a nestable async span on a per-
     * FlowClass "net" track: begin at arrival, a "rate" instant on
     * every max-min re-allocation that changes the flow's share (NIC
     * contention made visible), end at drain. Null = no-op recording
     * (the zero-cost rule); recording never schedules events.
     */
    void setTracer(obs::Tracer *t);

    struct TransferAwaiter
    {
        NetFabric &fab;
        NodeId src;
        NodeId dst;
        double bytes;
        FlowClass cls;
        FlowStats stats;
        std::coroutine_handle<> handle = nullptr;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            handle = h;
            fab.startFlow(this);
        }

        FlowStats await_resume() const { return stats; }
    };

    /**
     * Awaitable moving @p bytes from @p src to @p dst. Suspends until
     * the flow drains under max-min sharing plus the path propagation
     * latency; resumes with the flow's FlowStats. A zero-byte transfer
     * still charges the latency (a message crossed the wire).
     */
    TransferAwaiter
    transfer(NodeId src, NodeId dst, double bytes, FlowClass cls)
    {
        return TransferAwaiter{*this, src, dst, bytes, cls, {}};
    }

    /** Uncontended seconds to serialize @p bytes along src -> dst
     *  (path bottleneck rate; latency and sharing excluded). */
    double serviceTime(NodeId src, NodeId dst, double bytes) const;

    /** Propagation latency of the src -> dst path. */
    double pathLatency(NodeId src, NodeId dst) const;

    /** @name Per-node accounting (after Simulator::run())
     * @{ */
    double bytesInto(NodeId n) const;
    double bytesOutOf(NodeId n) const;
    double downlinkUtilization(NodeId n) const;
    /** @} */

    NetReport report() const;

    /** Flows currently in flight (tests / probes). */
    size_t activeFlows() const { return flows_.size(); }

  private:
    struct Link
    {
        double capBps = 0.0;
        double latencyS = 0.0;
        double bytesMoved = 0.0;
        /** Integral of (allocated rate / capacity) dt. */
        double busyS = 0.0;
    };

    struct Flow
    {
        TransferAwaiter *aw = nullptr;
        int up = 0;
        int down = 0;
        double remBits = 0.0;
        double rateBps = 0.0;
        int peakShared = 0;
        /** Async-span id on trace_ (0 = untraced). */
        uint64_t traceId = 0;
        /** Trace track of this flow's class. */
        int traceTrk = 0;
        /** Last rate recorded, to emit "rate" instants on change. */
        double tracedRateBps = -1.0;
    };

    /** One resolved LinkDegrade/LinkDown window on one link. */
    struct FaultWindow
    {
        int link = 0;
        double fromS = 0.0;
        double untilS = 0.0;
        /** Capacity multiplier; 0 = LinkDown. */
        double factor = 1.0;
        bool down = false;
        bool counted = false;
    };

    static int upOf(NodeId n) { return 2 * n; }
    static int downOf(NodeId n) { return 2 * n + 1; }

    void startFlow(TransferAwaiter *aw);
    /** Deliver bytes for the elapsed interval at current rates. */
    void advance();
    /** Progressive-filling max-min rate assignment (link order). */
    void recompute();
    /** Arm the next completion / fault-boundary event. */
    void scheduleNext();
    void onTick();
    void finishFlow(size_t idx);
    double effectiveCap(int link) const;
    /** Next fault-window boundary strictly after now; +inf if none. */
    double nextFaultBoundary() const;
    /** Count windows whose start has been reached (first observation). */
    void countWindows();

    sim::Simulator &sim_;
    std::vector<Link> links_;
    std::vector<Flow> flows_;
    std::vector<FaultWindow> windows_;
    sim::FaultInjector *inj_ = nullptr;
    obs::Tracer *trace_ = nullptr;
    /** Per-FlowClass "net" process tracks (valid when trace_ set). */
    int trkFlow_[6] = {};
    NodeId ingress_ = kNoNode;
    double lastAdvanceS_ = 0.0;
    uint64_t epoch_ = 0;
    double totalBytes_ = 0.0;
    uint64_t flowsCompleted_ = 0;
    uint64_t peakConcurrent_ = 0;
    /** Scratch buffers for recompute() (sized to links_). */
    mutable std::vector<double> remCap_;
    mutable std::vector<int> nUnfixed_;
};

} // namespace ndp::net
