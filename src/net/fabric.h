/**
 * @file
 * Deterministic, event-driven network fabric (§4.1, §6.4) over
 * composable topologies (net/topology.h).
 *
 * Every inter-node transfer in the simulated cluster — feature
 * shipping, delta pushes, SRV input staging, online uploads, media
 * results, recovery re-dispatch, WAN geo-replication — crosses one
 * NetFabric instead of a per-dataflow ad-hoc `bytes / Gbps` division.
 * Each node's NIC (from hw/specs.h) contributes a duplex pair of
 * directed access links — an uplink (node -> switch) and a downlink
 * (switch -> node). With the default hub topology the switch is one
 * implicit non-blocking ToR and a flow from src to dst crosses
 * exactly [uplink(src), downlink(dst)]: N PipeStores shipping to one
 * Tuner share the Tuner's ingress downlink *structurally*, so the
 * paper's bandwidth knee (Fig. 18) and the N-stores-share-one-link
 * APO term are emergent, not precomputed.
 *
 * With a declared Topology the path generalizes to
 * [uplink(src), trunk hops..., downlink(dst)] where the trunk hops —
 * oversubscribed rack uplinks, spine crossings, high-latency WAN
 * links — come from routing.h's deterministic shortest-path table.
 * The hub is the degenerate case (no trunks), and because trunk
 * links precede access links in the link array, a hub fabric's link
 * layout and float-op sequence are *identical* to the pre-topology
 * fabric: existing dataflows, goldens, and the determinism suite see
 * bit-for-bit the same results.
 *
 * Bandwidth allocation is flow-level max-min fairness via progressive
 * filling generalized to multi-link paths: on every flow arrival,
 * departure, and link-fault window boundary the fabric (1) advances
 * all active flows by their current rates, (2) re-solves the
 * allocation — repeatedly fix the flows of the link with the smallest
 * fair share remCap/nUnfixed (the bottleneck set), in deterministic
 * link-index order, removing each fixed flow's demand from *every*
 * link on its path — and (3) schedules the earliest completion,
 * guarded by an epoch counter so superseded events no-op. A transfer
 * completes after serialization and then charges the path propagation
 * latency (summed over every hop) before the awaiting coroutine
 * resumes.
 *
 * Determinism rule: the fabric performs no RNG draws and no wall-clock
 * reads; flows are stored and iterated in arrival order and links in
 * index order, so a run is a pure function of the transfer sequence.
 * Same seed + same FaultPlan => bit-identical NetReport.
 *
 * Fault interaction: when a FaultInjector carrying LinkDegrade /
 * LinkDown windows is attached, the affected links' capacities scale
 * (or drop to zero — flows stall in place, stall semantics) inside
 * each window. WAN-targeted windows (FaultPlan::degradeWanLink /
 * downWanLink) resolve to the topology's WAN trunks. The fabric
 * schedules recompute events at window boundaries only while flows
 * are active, so an empty plan leaves the event sequence bitwise
 * identical to an unarmed run.
 */

#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "hw/specs.h"
#include "net/routing.h"
#include "net/topology.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace ndp::net {

/** Index of a node (NIC) attached to the fabric. */
using NodeId = int;

/** Sentinel: no node / transfer leg not configured. */
inline constexpr NodeId kNoNode = -1;

/** Why bytes are crossing the fabric (per-flow accounting). */
enum class FlowClass
{
    /** SRV input staging: storage server -> host. */
    BulkInput,
    /** FT-DMP feature tensors: store -> Tuner. */
    FeatureShip,
    /** Check-N-Run model deltas: Tuner -> store. */
    DeltaPush,
    /** Online photo uploads: client -> inference server. */
    Upload,
    /** Inference labels / media results leaving a store. */
    ResultShip,
    /** Naive-NDP ("+FC") weight synchronization. */
    Sync,
    /** Geo-replication traffic crossing WAN links (deltas or
     *  fallback checkpoints; see core/georep). */
    GeoDelta,
};

inline constexpr int kFlowClasses = 7;

const char *flowClassName(FlowClass c);

/** What one completed transfer experienced. */
struct FlowStats
{
    double startS = 0.0;
    /** Serialization end; the awaiter resumes latency later. */
    double finishS = 0.0;
    double bytes = 0.0;
    /** bytes * 8 / (finishS - startS), i.e. contention included. */
    double achievedGbps = 0.0;
    /** Peak number of *other* flows sharing any of this flow's links. */
    int peakSharedWith = 0;
};

/** Per-run fabric roll-up, reported alongside StageMetrics. */
struct NetReport
{
    /** Payload bytes of completed flows (fabric-wide). */
    double bytesMoved = 0.0;
    uint64_t flowsCompleted = 0;
    /** High-water mark of simultaneously active flows. */
    uint64_t peakConcurrentFlows = 0;
    /** Bytes into the designated ingress node (Tuner/host downlink). */
    double ingressBytes = 0.0;
    /** Busy fraction of the ingress downlink over the whole run. */
    double ingressUtil = 0.0;
    /** Payload bytes of completed flows that crossed >= 1 WAN trunk
     *  (0 on hub and single-site topologies). */
    double wanBytes = 0.0;
};

class NetFabric
{
  public:
    /** Hub fabric: every node in one implicit non-blocking rack. */
    explicit NetFabric(sim::Simulator &s) : sim_(s) {}

    /**
     * Topology fabric: @p topo's trunk links occupy link indices
     * [0, topo.nTrunks()) in creation order; access links follow in
     * addNode() order. Routes are frozen here — declare the whole
     * topology before constructing the fabric.
     */
    NetFabric(sim::Simulator &s, const Topology &topo);

    NetFabric(const NetFabric &) = delete;
    NetFabric &operator=(const NetFabric &) = delete;

    /**
     * Attach a node with @p nic: creates its duplex uplink/downlink
     * pair to its rack switch. Node ids are dense and assigned in
     * call order (dataflows add stores first, so fault store index i
     * is fabric node i). The single-argument form attaches to rack 0
     * (the only choice on a hub fabric).
     */
    NodeId addNode(const hw::NicSpec &nic);
    NodeId addNode(const hw::NicSpec &nic, RackId rack);

    /** The installed topology (hub when default-constructed). */
    const Topology &topology() const { return topo_; }

    /** Rack @p n attached to (kNoRack on a hub fabric). */
    RackId rackOf(NodeId n) const;

    /** Designate the node whose downlink NetReport's ingress fields
     *  track (the Tuner / SRV host / inference server). */
    void setIngress(NodeId n) { ingress_ = n; }
    NodeId ingress() const { return ingress_; }

    /**
     * Adopt @p inj's LinkDegrade/LinkDown windows. Fault node mapping:
     * store index i targets fabric node i, FaultSpec::kIngressLink
     * targets the designated ingress node, kAnyStore every non-ingress
     * node; WAN faults (FaultSpec::wan) target the topology's WAN
     * trunks touching the named site (or all WAN trunks for kAnySite).
     * A null injector (or one without link faults) changes nothing —
     * the zero-cost rule of sim/fault.h.
     */
    void attachFaults(sim::FaultInjector *inj);

    /**
     * Record every flow on @p t as a nestable async span on a per-
     * FlowClass "net" track: begin at arrival, a "rate" instant on
     * every max-min re-allocation that changes the flow's share (NIC
     * contention made visible), end at drain. Null = no-op recording
     * (the zero-cost rule); recording never schedules events.
     */
    void setTracer(obs::Tracer *t);

    /** Longest path the router can produce: access pair + rack
     *  up/down trunks + a WAN chain of up to 4 hops. */
    static constexpr int kMaxPathLinks = 8;

    struct TransferAwaiter
    {
        NetFabric &fab;
        NodeId src;
        NodeId dst;
        double bytes;
        FlowClass cls;
        FlowStats stats;
        std::coroutine_handle<> handle = nullptr;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            handle = h;
            fab.startFlow(this);
        }

        FlowStats await_resume() const { return stats; }
    };

    /**
     * Awaitable moving @p bytes from @p src to @p dst. Suspends until
     * the flow drains under max-min sharing plus the path propagation
     * latency; resumes with the flow's FlowStats. A zero-byte transfer
     * still charges the latency (a message crossed the wire).
     */
    TransferAwaiter
    transfer(NodeId src, NodeId dst, double bytes, FlowClass cls)
    {
        return TransferAwaiter{*this, src, dst, bytes, cls, {}};
    }

    /** Uncontended seconds to serialize @p bytes along src -> dst
     *  (path bottleneck rate; latency and sharing excluded). */
    double serviceTime(NodeId src, NodeId dst, double bytes) const;

    /** Propagation latency of the src -> dst path (every hop). */
    double pathLatency(NodeId src, NodeId dst) const;

    /** @name Per-node accounting (after Simulator::run())
     * @{ */
    double bytesInto(NodeId n) const;
    double bytesOutOf(NodeId n) const;
    double downlinkUtilization(NodeId n) const;
    /** @} */

    /** @name Per-trunk accounting (topology fabrics; trunk indices
     *  are Topology creation order — obs gauges sample these)
     * @{ */
    double trunkBytes(size_t trunk) const;
    double trunkUtilization(size_t trunk) const;
    /** @} */

    NetReport report() const;

    /** Flows currently in flight (tests / probes). */
    size_t activeFlows() const { return flows_.size(); }

  private:
    struct Link
    {
        double capBps = 0.0;
        double latencyS = 0.0;
        double bytesMoved = 0.0;
        /** Integral of (allocated rate / capacity) dt. */
        double busyS = 0.0;
        /** This link is a WAN trunk (wanBytes accounting). */
        bool wan = false;
    };

    struct Flow
    {
        TransferAwaiter *aw = nullptr;
        /** Link indices crossed, in hop order: uplink first, trunk
         *  hops, downlink last (exactly {up, down} on a hub). */
        int path[kMaxPathLinks] = {};
        int nPath = 0;
        double remBits = 0.0;
        double rateBps = 0.0;
        int peakShared = 0;
        /** The path crosses >= 1 WAN trunk. */
        bool wan = false;
        /** Async-span id on trace_ (0 = untraced). */
        uint64_t traceId = 0;
        /** Trace track of this flow's class. */
        int traceTrk = 0;
        /** Last rate recorded, to emit "rate" instants on change. */
        double tracedRateBps = -1.0;
    };

    /** One resolved LinkDegrade/LinkDown window on one link. */
    struct FaultWindow
    {
        int link = 0;
        double fromS = 0.0;
        double untilS = 0.0;
        /** Capacity multiplier; 0 = LinkDown. */
        double factor = 1.0;
        bool down = false;
        /** Count this window in the FaultReport (one designated copy
         *  per declared fault target, not one per direction). */
        bool primary = false;
        bool counted = false;
    };

    int upOf(NodeId n) const { return nTrunks_ + 2 * n; }
    int downOf(NodeId n) const { return nTrunks_ + 2 * n + 1; }
    int nodeCount() const
    {
        return static_cast<int>(
            (links_.size() - static_cast<size_t>(nTrunks_)) / 2);
    }

    /** Fill @p path with the link indices of src -> dst; returns the
     *  hop count. Asserts the route exists. */
    int pathOf(NodeId src, NodeId dst, int *path) const;

    void startFlow(TransferAwaiter *aw);
    /** Deliver bytes for the elapsed interval at current rates. */
    void advance();
    /** Progressive-filling max-min rate assignment (link order). */
    void recompute();
    /** Arm the next completion / fault-boundary event. */
    void scheduleNext();
    void onTick();
    void finishFlow(size_t idx);
    double effectiveCap(int link) const;
    /** Next fault-window boundary strictly after now; +inf if none. */
    double nextFaultBoundary() const;
    /** Count windows whose start has been reached (first observation). */
    void countWindows();

    sim::Simulator &sim_;
    Topology topo_;
    RouteTable routes_;
    /** Trunk links occupy links_[0, nTrunks_); 0 on a hub fabric. */
    int nTrunks_ = 0;
    std::vector<Link> links_;
    /** Rack of node n (empty on a hub fabric). */
    std::vector<RackId> nodeRacks_;
    std::vector<Flow> flows_;
    std::vector<FaultWindow> windows_;
    sim::FaultInjector *inj_ = nullptr;
    obs::Tracer *trace_ = nullptr;
    /** Per-FlowClass "net" process tracks (valid when trace_ set). */
    int trkFlow_[kFlowClasses] = {};
    NodeId ingress_ = kNoNode;
    double lastAdvanceS_ = 0.0;
    uint64_t epoch_ = 0;
    double totalBytes_ = 0.0;
    double wanBytes_ = 0.0;
    uint64_t flowsCompleted_ = 0;
    uint64_t peakConcurrent_ = 0;
    /** Scratch buffers for recompute() (sized to links_). */
    mutable std::vector<double> remCap_;
    mutable std::vector<int> nUnfixed_;
};

} // namespace ndp::net
