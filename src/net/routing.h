/**
 * @file
 * Deterministic trunk routing over a Topology.
 *
 * A RouteTable answers one question for the fabric: which trunk links
 * does a flow cross between its source rack and destination rack?
 * (The access uplink/downlink pair is the fabric's own business; the
 * table covers only the switch graph in between.)
 *
 * Routes are all-pairs shortest paths over the directed trunk graph,
 * weighted by (latency, hop count) — WAN detours lose to direct WAN
 * links even when capacities differ, matching how real WAN overlays
 * pin routes by RTT. Ties break deterministically: Dijkstra relaxes
 * vertices in index order and prefers the lower predecessor trunk
 * index, so the same Topology always yields byte-identical paths
 * (the routing analogue of the fabric's link-index tie-break).
 *
 * The table is built once, after the Topology stops changing, and is
 * immutable afterwards: lookups are O(1) vector reads on the hot
 * startFlow path (measured by bench_micro_sim's multi-link-routing
 * workload).
 */

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/topology.h"

namespace ndp::net {

class RouteTable
{
  public:
    RouteTable() = default;

    explicit RouteTable(const Topology &topo)
        : nRacks_(topo.nRacks())
    {
        if (nRacks_ == 0)
            return; // hub: no trunks, nothing to route
        const int nv = topo.vertexCount();
        // Adjacency: out-trunks per vertex, in trunk-index order so
        // equal-cost relaxations pick the earliest-created trunk.
        std::vector<std::vector<int>> out(
            static_cast<size_t>(nv));
        for (size_t t = 0; t < topo.nTrunks(); ++t)
            out[static_cast<size_t>(
                    topo.vertexOf(topo.trunk(t).from))]
                .push_back(static_cast<int>(t));
        paths_.resize(static_cast<size_t>(nRacks_) *
                      static_cast<size_t>(nRacks_));
        for (RackId src = 0; src < nRacks_; ++src)
            buildFrom(topo, out, src);
    }

    /**
     * Trunk link indices (creation order in the Topology) a flow
     * crosses from @p src rack to @p dst rack; empty for src == dst.
     * Valid only when reachable(src, dst).
     */
    const std::vector<int> &
    trunkPath(RackId src, RackId dst) const
    {
        return paths_[idx(src, dst)].trunks;
    }

    /** False when the trunk graph has no src -> dst route. */
    bool
    reachable(RackId src, RackId dst) const
    {
        if (src == dst)
            return true;
        return paths_[idx(src, dst)].ok;
    }

    int nRacks() const { return nRacks_; }

  private:
    struct Path
    {
        std::vector<int> trunks;
        bool ok = false;
    };

    size_t
    idx(RackId src, RackId dst) const
    {
        assert(src >= 0 && src < nRacks_ && dst >= 0 &&
               dst < nRacks_);
        return static_cast<size_t>(src) *
                   static_cast<size_t>(nRacks_) +
               static_cast<size_t>(dst);
    }

    /** Dijkstra from one rack's ToR over the trunk graph. Vertex
     *  counts are tiny (racks + sites), so the O(V^2) scan is both
     *  simplest and deterministic — no heap tie ambiguity. */
    void
    buildFrom(const Topology &topo,
              const std::vector<std::vector<int>> &out, RackId src)
    {
        constexpr double kInf =
            std::numeric_limits<double>::infinity();
        const int nv = topo.vertexCount();
        std::vector<double> dist(static_cast<size_t>(nv), kInf);
        std::vector<int> hops(static_cast<size_t>(nv), 0);
        std::vector<int> viaTrunk(static_cast<size_t>(nv), -1);
        std::vector<char> done(static_cast<size_t>(nv), 0);
        dist[static_cast<size_t>(topo.rackVertex(src))] = 0.0;
        for (int round = 0; round < nv; ++round) {
            int u = -1;
            double best = kInf;
            for (int v = 0; v < nv; ++v) {
                const size_t vs = static_cast<size_t>(v);
                if (done[vs] || dist[vs] == kInf)
                    continue;
                if (dist[vs] < best ||
                    (dist[vs] == best &&
                     (u < 0 || hops[vs] < hops[static_cast<size_t>(
                                             u)]))) {
                    best = dist[vs];
                    u = v;
                }
            }
            if (u < 0)
                break;
            const size_t us = static_cast<size_t>(u);
            done[us] = 1;
            for (int t : out[us]) {
                const Trunk &tr = topo.trunk(static_cast<size_t>(t));
                const size_t vs = static_cast<size_t>(
                    topo.vertexOf(tr.to));
                const double d = dist[us] + tr.latencyS;
                const int h = hops[us] + 1;
                if (d < dist[vs] ||
                    (d == dist[vs] && h < hops[vs])) {
                    dist[vs] = d;
                    hops[vs] = h;
                    viaTrunk[vs] = t;
                }
            }
        }
        for (RackId dst = 0; dst < nRacks_; ++dst) {
            if (dst == src)
                continue;
            Path &p = paths_[idx(src, dst)];
            const size_t dvs =
                static_cast<size_t>(topo.rackVertex(dst));
            if (dist[dvs] == kInf)
                continue; // unreachable; p.ok stays false
            p.ok = true;
            for (int v = static_cast<int>(dvs);
                 viaTrunk[static_cast<size_t>(v)] >= 0;) {
                const int t = viaTrunk[static_cast<size_t>(v)];
                p.trunks.push_back(t);
                v = topo.vertexOf(
                    topo.trunk(static_cast<size_t>(t)).from);
            }
            std::reverse(p.trunks.begin(), p.trunks.end());
        }
    }

    int nRacks_ = 0;
    std::vector<Path> paths_;
};

} // namespace ndp::net
