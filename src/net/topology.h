/**
 * @file
 * Composable network topologies for the NetFabric (ROADMAP item 4).
 *
 * The fabric's original model — every NIC hangs off one implicit,
 * non-blocking top-of-rack switch — is the degenerate case of the
 * graph this file describes. A Topology adds structure *above* the
 * per-node access links the fabric already owns:
 *
 *   - Sites: datacenters (or regions). Each site has one core switch.
 *   - Racks: a ToR switch inside a site, joined to the site core by a
 *     duplex trunk pair whose capacity is typically *oversubscribed*
 *     (uplink Gbps < sum of member NIC Gbps).
 *   - WAN links: duplex trunk pairs between site cores — high
 *     latency, low bandwidth, the expensive hops geo-replication
 *     must cross.
 *
 * Nodes attach to racks (NetFabric::addNode(nic, rack)); a flow's
 * path is [src uplink, trunk hops..., dst downlink], where the trunk
 * hops come from routing.h's deterministic shortest-path table:
 *
 *   same rack        : no trunk hops (the ToR is non-blocking)
 *   same site        : srcRack->core, core->dstRack
 *   different sites  : srcRack->core, core..core WAN hops, core->dstRack
 *
 * The empty Topology (no racks declared) *is* the single hub: the
 * fabric places every node in one implicit rack and no flow ever
 * crosses a trunk, so the allocator performs the exact float-op
 * sequence of the pre-topology fabric — goldens and the determinism
 * suite need no re-baseline (pinned by tests/test_net_topology.cc).
 *
 * Determinism rule: a Topology is pure declarative data. Builder
 * calls assign ids densely in call order; trunk link indices are the
 * creation order; routing tie-breaks by vertex index. No RNG, no
 * wall clock — the same builder sequence always yields the same
 * graph, routes, and therefore the same simulation.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ndp::net {

/** Index of a site (datacenter / region). */
using SiteId = int;

/** Index of a rack (ToR switch) within the topology. */
using RackId = int;

/** Sentinel: no site / no rack. */
inline constexpr int kNoSite = -1;
inline constexpr int kNoRack = -1;

/**
 * One directed trunk link (rack<->core or core<->core). Trunks are
 * always created in duplex pairs; the pair's two directions are
 * adjacent in creation order (forward first).
 *
 * Endpoint encoding: a non-negative endpoint is a rack (ToR switch)
 * id; a negative endpoint ~s is the core switch of site s. The
 * encoding is stable under later builder calls, so routing.h can
 * translate to dense vertices with rackVertex()/coreVertex() once
 * building stops.
 */
struct Trunk
{
    /** Switch this trunk leaves (rack id, or ~site for a core). */
    int from = 0;
    /** Switch this trunk enters (rack id, or ~site for a core). */
    int to = 0;
    double gbps = 0.0;
    /** One-way propagation latency, seconds. */
    double latencyS = 0.0;
    /** True for core<->core links between different sites. */
    bool wan = false;
    /** Sites this trunk touches (equal for rack trunks). */
    SiteId siteA = kNoSite;
    SiteId siteB = kNoSite;
};

class Topology
{
  public:
    /**
     * Dense routing-vertex numbering: racks come first, site cores
     * after. Valid only once building stops (routing.h builds its
     * table from the final graph). Trunk endpoints use the stable
     * rack-or-~site encoding; decode with vertexOf().
     */
    int rackVertex(RackId r) const { return r; }
    int coreVertex(SiteId s) const
    {
        return static_cast<int>(racks_.size()) + s;
    }
    /** Dense vertex of a Trunk::from / Trunk::to endpoint. */
    int vertexOf(int endpoint) const
    {
        return endpoint >= 0 ? rackVertex(endpoint)
                             : coreVertex(~endpoint);
    }
    int vertexCount() const
    {
        return static_cast<int>(racks_.size() + sites_.size());
    }

    /** @name Builders (ids are dense, assigned in call order)
     * @{ */
    /** Declare a site (datacenter); creates its core switch. */
    SiteId addSite(std::string name);

    /**
     * Declare a rack in @p site: a ToR switch joined to the site core
     * by a duplex trunk of @p uplink_gbps each way. Oversubscription
     * is expressed by giving the trunk less capacity than the sum of
     * the member NICs; @p latency_s is the one-way ToR<->core hop.
     */
    RackId addRack(SiteId site, double uplink_gbps,
                   double latency_s = 0.0);

    /**
     * Join two site cores with a duplex WAN trunk (@p gbps each way,
     * @p latency_s one way — tens of milliseconds, not microseconds).
     */
    void addWanLink(SiteId a, SiteId b, double gbps, double latency_s);
    /** @} */

    /** @name Canned shapes
     * @{ */
    /** The degenerate single-hub topology (no trunks at all). */
    static Topology hub() { return Topology{}; }

    /**
     * One site, @p n_racks racks, every rack uplink @p uplink_gbps.
     * Spine (the site core) is non-blocking; contention lives on the
     * oversubscribed rack trunks.
     */
    static Topology rackSpine(int n_racks, double uplink_gbps,
                              double latency_s = 0.0);
    /** @} */

    /** True when no rack was declared: every node lives in one
     *  implicit non-blocking rack and no flow crosses a trunk. */
    bool isHub() const { return racks_.empty(); }

    int nSites() const { return static_cast<int>(sites_.size()); }
    int nRacks() const { return static_cast<int>(racks_.size()); }
    size_t nTrunks() const { return trunks_.size(); }
    const Trunk &trunk(size_t i) const { return trunks_[i]; }
    const std::vector<Trunk> &trunks() const { return trunks_; }

    SiteId siteOf(RackId r) const
    {
        return racks_[static_cast<size_t>(r)].site;
    }
    const std::string &siteName(SiteId s) const
    {
        return sites_[static_cast<size_t>(s)].name;
    }

    /** Empty string when valid; otherwise names the offending part. */
    std::string validate() const;

  private:
    struct Site
    {
        std::string name;
    };

    struct Rack
    {
        SiteId site = kNoSite;
        double uplinkGbps = 0.0;
        double latencyS = 0.0;
    };

    std::vector<Site> sites_;
    std::vector<Rack> racks_;
    std::vector<Trunk> trunks_;
};

} // namespace ndp::net
