#include "net/topology.h"

namespace ndp::net {

SiteId
Topology::addSite(std::string name)
{
    sites_.push_back({std::move(name)});
    return static_cast<SiteId>(sites_.size()) - 1;
}

RackId
Topology::addRack(SiteId site, double uplink_gbps, double latency_s)
{
    const RackId r = static_cast<RackId>(racks_.size());
    racks_.push_back({site, uplink_gbps, latency_s});
    Trunk up;
    up.from = r;
    up.to = ~site;
    up.gbps = uplink_gbps;
    up.latencyS = latency_s;
    up.wan = false;
    up.siteA = site;
    up.siteB = site;
    Trunk down = up;
    down.from = ~site;
    down.to = r;
    trunks_.push_back(up);
    trunks_.push_back(down);
    return r;
}

void
Topology::addWanLink(SiteId a, SiteId b, double gbps, double latency_s)
{
    Trunk fwd;
    fwd.from = ~a;
    fwd.to = ~b;
    fwd.gbps = gbps;
    fwd.latencyS = latency_s;
    fwd.wan = true;
    fwd.siteA = a;
    fwd.siteB = b;
    Trunk rev = fwd;
    rev.from = ~b;
    rev.to = ~a;
    trunks_.push_back(fwd);
    trunks_.push_back(rev);
}

Topology
Topology::rackSpine(int n_racks, double uplink_gbps, double latency_s)
{
    Topology t;
    const SiteId s = t.addSite("dc");
    for (int r = 0; r < n_racks; ++r)
        t.addRack(s, uplink_gbps, latency_s);
    return t;
}

std::string
Topology::validate() const
{
    for (size_t r = 0; r < racks_.size(); ++r) {
        if (racks_[r].site < 0 ||
            racks_[r].site >= static_cast<SiteId>(sites_.size()))
            return "Topology: rack " + std::to_string(r) +
                   " names an undeclared site";
        if (racks_[r].uplinkGbps <= 0.0)
            return "Topology: rack " + std::to_string(r) +
                   " uplink must be > 0 Gbps";
    }
    for (size_t i = 0; i < trunks_.size(); ++i) {
        const Trunk &t = trunks_[i];
        if (t.gbps <= 0.0)
            return "Topology: trunk " + std::to_string(i) +
                   " capacity must be > 0 Gbps";
        if (t.latencyS < 0.0)
            return "Topology: trunk " + std::to_string(i) +
                   " latency must be >= 0";
        if (t.wan && t.siteA == t.siteB)
            return "Topology: WAN trunk " + std::to_string(i) +
                   " joins a site to itself";
    }
    return {};
}

} // namespace ndp::net
