/**
 * @file
 * Multi-job cluster walkthrough: plan a shared PipeStore fleet with
 * global APO, then run the planned nightly fine-tunes next to online
 * serving under the cluster scheduler.
 *
 * The photo service contributes its own fine-tune via
 * PhotoService::fineTuneJobDesc() — a performance twin of fineTune()
 * sized to the current photo pool — and a second tenant brings a
 * ShuffleNetV2 job. planJobs() (core/apo.h) partitions the fleet and
 * picks each job's cut; the Cluster (core/sched) arbitrates the
 * shared Tuner GPU, keeping the latency-critical serving job at
 * higher priority than every batch job.
 */

#include <cstdio>
#include <vector>

#include "core/apo.h"
#include "core/sched/cluster.h"
#include "core/service.h"

using namespace ndp;
using namespace ndp::core;

int
main()
{
    std::printf("NDPipe multi-job cluster walkthrough\n");
    std::printf("====================================\n\n");

    // The functional photo service accumulates a few days of uploads;
    // its nightly fine-tune becomes one schedulable cluster job.
    PhotoService::Config scfg;
    scfg.profile = data::imagenet1kProfile();
    scfg.profile.world.initialImages = 2500; // demo scale
    scfg.nRun = 2;
    PhotoService service(scfg);
    service.bootstrap();
    service.advanceDays(2);
    sched::JobDesc svc = service.fineTuneJobDesc("svc-nightly");
    std::printf("Photo service pool: %zu photos -> job '%s' "
                "(%llu images, N_run=%d)\n",
                service.world().numImages(), svc.name.c_str(),
                static_cast<unsigned long long>(svc.nImages),
                svc.train.nRun);

    // Global APO splits a 6-store fleet between the service job and a
    // second tenant, choosing each job's partition point jointly.
    ClusterSpec spec;
    spec.nStores = 6;
    ExperimentConfig fleet;
    fleet.networkGbps = spec.networkGbps;
    fleet.storeSpec = spec.storeSpec;
    fleet.tunerSpec = spec.tunerSpec;
    std::vector<ApoJobSpec> wants;
    wants.push_back({svc.name, svc.model, svc.nImages, svc.train});
    wants.push_back(
        {"tenant-shufflenet", &models::shufflenetV2(), 40000, {}});
    GlobalApoResult plan = planJobs(fleet, wants, spec.nStores);

    std::printf("\nGlobal APO plan (%d stores, predicted makespan "
                "%.0f s):\n",
                spec.nStores, plan.makespanS);
    for (const ApoJobPlan &p : plan.jobs)
        std::printf("  %-18s stores %d..%d  cut %d  predicted %.0f s\n",
                    p.name.c_str(), p.firstStore,
                    p.firstStore + p.nStores - 1,
                    static_cast<int>(p.choice.cut),
                    p.choice.predictedTotalS);

    // Submit the planned jobs plus the online serving path; the
    // scheduler keeps serving (priority 2) ahead of the batch jobs.
    sched::Cluster cluster(spec);
    for (size_t j = 0; j < plan.jobs.size(); ++j) {
        const ApoJobPlan &p = plan.jobs[j];
        sched::JobDesc d;
        d.name = p.name;
        d.kind = sched::JobKind::FtDmpTrain;
        for (int k = 0; k < p.nStores; ++k)
            d.stores.push_back(p.firstStore + k);
        d.model = wants[j].model;
        d.nImages = wants[j].nImages;
        d.train = wants[j].train;
        cluster.submit(d);
    }
    sched::JobDesc serve;
    serve.name = "serve";
    serve.kind = sched::JobKind::OnlineServe;
    serve.priority = 2;
    serve.arrivalsPerSec = 80.0;
    serve.nUploads = 2000;
    cluster.submit(serve);
    sched::ClusterReport rep = cluster.run();

    std::printf("\nCluster run: %.0f sim-s, %llu events\n", rep.seconds,
                static_cast<unsigned long long>(rep.events));
    for (const sched::JobReport &j : rep.jobs) {
        std::printf("  %-18s %-8s prio %d  makespan %7.1f s  "
                    "wait %5.1f s  preempt %llu",
                    j.name.c_str(), sched::jobKindName(j.kind),
                    j.priority, j.makespanS, j.waitS,
                    static_cast<unsigned long long>(j.preemptions));
        if (j.kind == sched::JobKind::OnlineServe)
            std::printf("  p50 %.1f ms  p99 %.1f ms", j.p50Ms,
                        j.p99Ms);
        std::printf("\n");
    }
    return 0;
}
