/**
 * @file
 * Quickstart: the smallest end-to-end NDPipe run.
 *
 * Mirrors the paper's artifact workflow (Appendix A): bring up a
 * Tuner and a handful of PipeStores, run distributed feature
 * extraction over the photo pool, fine-tune the classifier on the
 * Tuner, and print the artifact-style console lines (feature
 * extraction time/throughput, overall fine-tuning time) plus an
 * offline-inference measurement — here against the simulated cluster
 * and the functional model at CIFAR-100 scale.
 */

#include <chrono>
#include <cstdio>

#include "core/inference.h"
#include "core/service.h"
#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

int
main()
{
    std::printf("NDPipe quickstart\n");
    std::printf("=================\n\n");

    // --- Functional path: a real fine-tune on the CIFAR-100-scale
    // profile, sharded over 4 simulated PipeStores. ---
    PhotoService::Config cfg;
    cfg.profile = data::cifar100Profile();
    cfg.nPipeStores = 4;
    PhotoService service(cfg);

    std::printf("[1/4] Bootstrapping: full-training the base model on "
                "%zu photos...\n",
                service.world().numImages());
    service.bootstrap();
    auto base_acc = service.evaluateCurrentModel();
    std::printf("      base model v%d: top-1 %.2f%%, top-5 %.2f%%\n\n",
                service.modelVersion(), 100.0 * base_acc.top1,
                100.0 * base_acc.top5);

    std::printf("[2/4] Two weeks of uploads drift the data...\n");
    service.advanceDays(14);
    auto drifted = service.evaluateCurrentModel();
    std::printf("      outdated model: top-1 %.2f%% (was %.2f%%)\n\n",
                100.0 * drifted.top1, 100.0 * base_acc.top1);

    std::printf("[3/4] FT-DMP fine-tuning across %d PipeStores...\n",
                cfg.nPipeStores);
    auto t0 = std::chrono::steady_clock::now();
    auto outcome = service.fineTune();
    auto wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

    // Artifact-style report (Appendix A.6).
    double fe_images = 0.0;
    for (size_t s : outcome.shardSizes)
        fe_images += static_cast<double>(s);
    ExperimentConfig sim_cfg;
    sim_cfg.model = &models::resnet50();
    sim_cfg.nStores = cfg.nPipeStores;
    sim_cfg.nImages = static_cast<uint64_t>(fe_images);
    TrainOptions opt;
    opt.nRun = 1;
    auto sim = runFtDmpTraining(sim_cfg, opt);
    std::printf("      Feature extraction time (sec): %.2f\n",
                fe_images / sim.feIps);
    std::printf("      Feature extraction throughput (image/sec): "
                "%.2f\n",
                sim.feIps);
    std::printf("      Overall fine-tuning time (sec): %.2f\n",
                sim.seconds);
    std::printf("      (functional head training took %.1fs wall, "
                "%d epochs; model v%d, top-1 %.2f%%)\n",
                wall, outcome.epochs, outcome.newModelVersion,
                100.0 * outcome.top1After);
    // The functional model is head-heavy (a few KB total), so quote
    // the delta win at ResNet50 scale from the cluster simulation too.
    double delta_mb =
        sim.distributionBytes / sim_cfg.nStores / 1e6;
    double full_mb = sim_cfg.model->totalParamsM() * 4.0;
    std::printf("      Check-N-Run delta (functional model): %.2f KB "
                "vs %.2f KB full\n",
                outcome.deltaBytes / 1e3,
                outcome.fullModelBytes / 1e3);
    std::printf("      Check-N-Run delta (ResNet50 scale): %.2f MB vs "
                "%.0f MB full (%.0fx reduction)\n\n",
                delta_mb, full_mb, full_mb / delta_mb);

    std::printf("[4/4] Offline inference refresh on the "
                "PipeStores...\n");
    auto changed = service.refreshLabels();
    sim_cfg.nImages = service.world().numImages();
    auto inf = runNdpOfflineInference(sim_cfg);
    std::printf("      [NDPipe] inference time: %.2fsec\n",
                inf.seconds);
    std::printf("      [NDPipe] inference throughput: %.2fIPS\n",
                inf.ips);
    std::printf("      %zu of %zu labels changed after the model "
                "update\n",
                changed, service.world().numImages());

    std::printf("\nDone. See bench/ for every paper figure and "
                "table.\n");
    return 0;
}
