/**
 * @file
 * Continuous training over eight weeks (§3.2 + §6.3 narrative).
 *
 * Runs the drift scenario the paper motivates: without updates the
 * model decays; with biweekly FT-DMP fine-tuning plus offline label
 * refresh, accuracy stays near the base level at a tiny fraction of
 * full training's cost. Prints the accuracy trajectory of both
 * policies and the cumulative network traffic the Check-N-Run deltas
 * saved.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/service.h"
#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

int
main()
{
    std::printf("Continuous training vs a frozen model (8 weeks)\n");
    std::printf("===============================================\n\n");

    PhotoService::Config cfg;
    cfg.profile = data::imagenet1kProfile();
    cfg.profile.world.initialImages = 6000; // demo scale
    cfg.nPipeStores = 8;

    PhotoService frozen(cfg);
    frozen.bootstrap();
    PhotoService tuned(cfg);
    tuned.bootstrap();

    std::printf("%-6s | %-18s | %-18s | %s\n", "Week",
                "Frozen top-1 (%)", "NDPipe top-1 (%)",
                "Fine-tune activity");
    std::printf("-------+--------------------+--------------------+--"
                "------------------------\n");

    double delta_traffic = 0.0, full_traffic = 0.0;
    size_t labels_fixed = 0;
    for (int week = 1; week <= 8; ++week) {
        frozen.advanceDays(7);
        tuned.advanceDays(7);

        std::string activity = "-";
        if (week % 2 == 0) {
            auto out = tuned.fineTune();
            size_t fixed = tuned.refreshLabels();
            labels_fixed += fixed;
            delta_traffic += static_cast<double>(out.deltaBytes) *
                             cfg.nPipeStores;
            full_traffic += static_cast<double>(out.fullModelBytes) *
                            cfg.nPipeStores;
            activity = "v" + std::to_string(out.newModelVersion) +
                       ": top-1 " +
                       std::to_string(100.0 * out.top1After)
                           .substr(0, 5) +
                       "%, " + std::to_string(fixed) +
                       " labels fixed";
        }
        std::printf("%-6d | %-18.2f | %-18.2f | %s\n", week,
                    100.0 * frozen.evaluateCurrentModel().top1,
                    100.0 * tuned.evaluateCurrentModel().top1,
                    activity.c_str());
    }

    std::printf("\nModel distribution traffic over 8 weeks: %.2f MB "
                "as deltas vs %.2f MB shipping full models\n",
                delta_traffic / 1e6, full_traffic / 1e6);
    // The functional model is head-heavy; at ResNet50 scale the same
    // four updates would ship ~1 MB of deltas instead of ~3.3 GB of
    // full models (~427x, Section 5).
    double r50_full = 4.0 * cfg.nPipeStores *
                      models::resnet50().totalParamsM() * 4.0;
    double r50_delta = 4.0 * cfg.nPipeStores *
                       models::resnet50().trainableParamsM() * 4.0 /
                       34.0;
    std::printf("At ResNet50 scale: %.1f MB of deltas vs %.0f MB of "
                "full models (%.0fx reduction)\n",
                r50_delta, r50_full, r50_full / r50_delta);
    std::printf("Total outdated labels repaired by offline inference: "
                "%zu\n",
                labels_fixed);

    // What the same cadence costs on the simulated cluster.
    ExperimentConfig sim;
    sim.model = &models::resnet50();
    sim.nStores = cfg.nPipeStores;
    sim.nImages = 1200000;
    TrainOptions opt;
    auto r = runFtDmpTraining(sim, opt);
    auto srv = runSrvFineTuning(sim);
    std::printf("\nAt production scale (1.2M images), each fine-tune "
                "costs %.1f min on %d PipeStores vs %.1f min on "
                "SRV-C (%.2fx faster, %.2fx the energy "
                "efficiency).\n",
                r.seconds / 60.0, cfg.nPipeStores, srv.seconds / 60.0,
                srv.seconds / r.seconds,
                r.ipsPerKj() / srv.ipsPerKj());

    // NDP_FAULTS=1 replays the same fine-tune on an unlucky day: one
    // PipeStore dies a third of the way in and another suffers flaky
    // object-store reads. With this seed the flaky store even draws an
    // error burst long enough to exhaust its retry budget and is
    // escalated to dead (hence crashes=2). FT-DMP re-assigns both dead
    // stores' shards to the survivors, so the run still extracts every
    // image — the FaultReport below is the typed account.
    const char *flag = std::getenv("NDP_FAULTS");
    if (flag != nullptr && *flag != '\0' &&
        std::strcmp(flag, "0") != 0) {
        ExperimentConfig faulty = sim;
        faulty.faults.crashStore(0, r.seconds / 3.0)
            .readErrors(0.05, 1);
        auto fr = runFtDmpTraining(faulty, opt);
        const auto &f = fr.faults;
        std::printf(
            "\nNDP_FAULTS demo - same fine-tune, one crashed store "
            "and one flaky disk:\n"
            "  time %.1f min (%.2fx the fault-free run), "
            "%.1f s degraded\n"
            "  crashes=%llu ioErrors=%llu ioRetries=%llu "
            "itemsRedispatched=%llu itemsLost=%llu\n"
            "  outcome: %s\n",
            fr.seconds / 60.0, fr.seconds / r.seconds, f.degradedS,
            static_cast<unsigned long long>(f.crashes),
            static_cast<unsigned long long>(f.ioErrors),
            static_cast<unsigned long long>(f.ioRetries),
            static_cast<unsigned long long>(f.itemsRedispatched),
            static_cast<unsigned long long>(f.itemsLost),
            f.recovered() ? "fully recovered"
                          : sim::faultClassName(f.terminal));
    }
    return 0;
}
