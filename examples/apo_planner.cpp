/**
 * @file
 * APO planner CLI (§5.3): given a model, a network bandwidth, and the
 * fleet limit, print the partition point and PipeStore count APO
 * recommends, with the predicted stage balance for each fleet size.
 *
 * Usage: apo_planner [model] [gbps] [max_stores]
 *   model: ShuffleNetV2 | ResNet50 | InceptionV3 | ResNeXt101 | ViT
 */

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/apo.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    std::string model_name = argc > 1 ? argv[1] : "ResNet50";
    double gbps = argc > 2 ? std::atof(argv[2]) : 10.0;
    int max_stores = argc > 3 ? std::atoi(argv[3]) : 20;

    ExperimentConfig cfg;
    try {
        cfg.model = &models::byName(model_name);
    } catch (const std::out_of_range &e) {
        std::fprintf(stderr, "%s\nmodels:", e.what());
        for (auto *m : models::allModels())
            std::fprintf(stderr, " %s", m->name().c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }
    cfg.networkGbps = gbps;
    cfg.nImages = 1200000;
    TrainOptions opt;

    std::printf("APO planner: %s over %.0f Gbps, up to %d "
                "PipeStores\n\n",
                cfg.model->name().c_str(), gbps, max_stores);

    auto result = findBestOrganization(cfg, opt, max_stores);

    std::printf("%-8s %-12s %-10s %-10s %-10s %-8s\n", "#Stores",
                "Cut", "T_ps (s)", "T_net (s)", "T_tuner(s)",
                "T_diff");
    for (const auto &p : result.sweep) {
        std::string cut_name =
            p.choice.cut == 0
                ? "None"
                : "+" + cfg.model->blocks()[p.choice.cut - 1].name;
        std::printf("%-8d %-12s %-10.1f %-10.1f %-10.1f %-8.2f%s\n",
                    p.nStores, cut_name.c_str(), p.choice.storeStageS,
                    p.choice.netStageS, p.choice.tunerStageS, p.tDiff,
                    p.nStores == result.bestStores ? "  <== pick" : "");
    }

    std::string best_cut =
        result.bestChoice.cut == 0
            ? "None"
            : "+" +
                  cfg.model->blocks()[result.bestChoice.cut - 1].name;
    std::printf("\nRecommendation: %d PipeStores, partition at %s "
                "(%.4f MB/image over the wire, predicted training "
                "%.1f s).\n",
                result.bestStores, best_cut.c_str(),
                result.bestChoice.transferMBPerImage,
                result.bestChoice.predictedTotalS);
    return 0;
}
