/**
 * @file
 * Media archive example (§7.1): run the NDPipe engine over a mixed
 * archive of videos, audio tracks, and documents.
 *
 * A streaming platform stores 220 MB clips, a music service stores
 * 9 MB tracks, and a document store holds sub-MB files; all three want
 * fresh ML-derived metadata (content labels, genres, embeddings)
 * without hauling raw objects across the data center. This example
 * sizes a PipeStore fleet per medium and reports what the fleet ships
 * over the network compared to a centralized deployment.
 */

#include <cstdio>

#include "core/media.h"

using namespace ndp;
using namespace ndp::core;

namespace {

int
storesToMatchCentral(const ExperimentConfig &base,
                     const MediaProfile &media, uint64_t objects,
                     double target_ops)
{
    for (int n = 1; n <= 32; ++n) {
        ExperimentConfig cfg = base;
        cfg.nStores = n;
        if (runNdpMediaAnalysis(cfg, media, objects).ops >= target_ops)
            return n;
    }
    return 32;
}

} // namespace

int
main()
{
    std::printf("NDPipe media archive (video / audio / documents)\n");
    std::printf("================================================\n");

    ExperimentConfig cfg;
    cfg.nStores = 4;

    for (const auto &media : allMedia()) {
        if (media.name == "photo")
            continue;
        uint64_t objects = media.rawMB > 50.0 ? 300 : 3000;

        auto ndp = runNdpMediaAnalysis(cfg, media, objects);
        auto srv = runSrvMediaAnalysis(cfg, media, objects);
        int match = storesToMatchCentral(cfg, media, objects, srv.ops);

        std::printf("\n--- %s archive (%.0f MB objects, %.0f analysis "
                    "units each) ---\n",
                    media.name.c_str(), media.rawMB,
                    media.unitsPerObject);
        std::printf("  centralized host:  %8.1f obj/s, %8.1f MB on "
                    "the wire\n",
                    srv.ops, srv.netBytes / 1e6);
        std::printf("  4 PipeStores:      %8.1f obj/s, %8.3f MB on "
                    "the wire (%.0fx less traffic)\n",
                    ndp.ops, ndp.netBytes / 1e6,
                    srv.netBytes / ndp.netBytes);
        std::printf("  stores needed to match the central host: %d\n",
                    match);
    }

    std::printf("\nThe bulkier the object relative to its analysis "
                "result, the stronger the near-data case — exactly "
                "the paper's §7.1 argument.\n");
    return 0;
}
