/**
 * @file
 * A day in the life of the photo service (§3.1, Fig. 7).
 *
 * Demonstrates the full storage-side object path with real bytes:
 * uploads store a raw "JPEG" plus a deflate-compressed preprocessed
 * binary (the NPE +Offload/+Comp layout), online inference labels
 * each upload into the label database, search queries hit the
 * inverted index, and offline inference refreshes labels after a
 * model update. Storage overheads are reported against the paper's
 * 17.5%-before-compression figure.
 */

#include <cstdio>

#include "core/service.h"
#include "storage/object_store.h"
#include "storage/photo_gen.h"

using namespace ndp;
using namespace ndp::core;

int
main()
{
    std::printf("NDPipe photo service walkthrough\n");
    std::printf("================================\n\n");

    PhotoService::Config cfg;
    cfg.profile = data::imagenet1kProfile();
    cfg.profile.world.initialImages = 3000; // demo scale
    PhotoService service(cfg);
    service.bootstrap();
    std::printf("Bootstrapped: %zu photos labeled by model v%d "
                "(top-1 %.2f%%)\n",
                service.labels().size(), service.modelVersion(),
                100.0 * service.evaluateCurrentModel().top1);

    // Materialize a sample of the pool as actual bytes in the object
    // store: raw photo + compressed preprocessed binary per photo.
    storage::ObjectStore store;
    storage::PhotoGenerator gen;
    const size_t sample = 64;
    double pre_uncompressed = 0.0;
    for (size_t i = 0; i < sample; ++i) {
        uint64_t id = service.world().pool()[i].id;
        store.put("raw/" + std::to_string(id), gen.rawPhoto(id));
        auto pre = gen.preprocessedBinary(id);
        pre_uncompressed += static_cast<double>(pre.size());
        store.put("pre/" + std::to_string(id),
                  storage::deflateLite(pre));
    }
    double raw_b = static_cast<double>(store.bytesUnderPrefix("raw/"));
    double pre_b = static_cast<double>(store.bytesUnderPrefix("pre/"));
    std::printf("\nObject store (%zu-photo sample):\n", sample);
    std::printf("  raw photos:            %8.1f MB\n", raw_b / 1e6);
    std::printf("  preprocessed (deflate):%8.1f MB (%.1f%% overhead; "
                "%.1f%% before compression, paper: 17.5%%)\n",
                pre_b / 1e6, 100.0 * pre_b / raw_b,
                100.0 * pre_uncompressed / raw_b);

    // Verify a stored binary round-trips.
    uint64_t probe = service.world().pool()[0].id;
    auto blob = store.get("pre/" + std::to_string(probe));
    auto restored = storage::inflateLite(*blob);
    std::printf("  round-trip check on pre/%llu: %s\n",
                static_cast<unsigned long long>(probe),
                restored && *restored == gen.preprocessedBinary(probe)
                    ? "OK"
                    : "FAILED");

    // Search before drift.
    int query = 3;
    auto hits = service.search(query);
    std::printf("\nSearch label %d: %zu photos indexed\n", query,
                hits.size());

    // A week of uploads, then a model refresh.
    std::printf("\nA week of uploads arrives (online inference labels "
                "each)...\n");
    service.advanceDays(7);
    std::printf("  pool: %zu photos, %zu labels, model v%d top-1 now "
                "%.2f%%\n",
                service.world().numImages(), service.labels().size(),
                service.modelVersion(),
                100.0 * service.evaluateCurrentModel().top1);

    auto outcome = service.fineTune();
    std::printf("\nFine-tuned to v%d: top-1 %.2f%% -> %.2f%% "
                "(Check-N-Run delta %.1f KB vs %.1f KB full; the "
                "functional model is head-heavy, so the paper-scale "
                "~427x cut shows up in the cluster benches)\n",
                outcome.newModelVersion, 100.0 * outcome.top1Before,
                100.0 * outcome.top1After, outcome.deltaBytes / 1e3,
                outcome.fullModelBytes / 1e3);

    std::printf("Labels carrying stale model versions: %zu\n",
                service.outdatedLabelCount());
    size_t changed = service.refreshLabels();
    std::printf("Offline inference refreshed the index: %zu labels "
                "changed, %zu still outdated\n",
                changed, service.outdatedLabelCount());

    auto hits_after = service.search(query);
    std::printf("Search label %d now returns %zu photos\n", query,
                hits_after.size());
    return 0;
}
